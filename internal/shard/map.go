package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per shard when the map file
// leaves it zero: enough points that a 3-shard ring splits a uniform
// video population within a few percent of even, cheap enough that a
// reload rebuilds the ring in microseconds.
const DefaultReplicas = 128

// MapEntry is one shard in the map: a stable name (the ring hashes the
// name, so a shard can change address — restart on a new port, move
// hosts — without any video changing owner) and the tasmd address the
// router dials.
type MapEntry struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Map is an immutable consistent-hash ring over a set of tasmd shards.
// Each shard contributes Replicas virtual points (FNV-1a of
// "name#i"), and a video's owner is the shard whose point is first at
// or clockwise of the video name's hash. Immutability is the reload
// contract: SIGHUP builds a fresh Map and swaps it in whole, so no
// request ever sees a half-updated ring.
type Map struct {
	replicas int
	entries  []MapEntry
	points   []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int // index into entries
}

// NewMap builds a ring from the entries. Names and addresses must be
// unique and non-empty; replicas <= 0 means DefaultReplicas.
func NewMap(entries []MapEntry, replicas int) (*Map, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("shard: map has no shards")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	names := map[string]bool{}
	addrs := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Addr == "" {
			return nil, fmt.Errorf("shard: map entry needs both name and addr (got name=%q addr=%q)", e.Name, e.Addr)
		}
		if names[e.Name] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", e.Name)
		}
		if addrs[e.Addr] {
			return nil, fmt.Errorf("shard: duplicate shard addr %q", e.Addr)
		}
		names[e.Name], addrs[e.Addr] = true, true
	}
	m := &Map{
		replicas: replicas,
		entries:  append([]MapEntry(nil), entries...),
		points:   make([]ringPoint, 0, replicas*len(entries)),
	}
	for i, e := range m.entries {
		for r := 0; r < replicas; r++ {
			m.points = append(m.points, ringPoint{hash: hashKey(e.Name + "#" + strconv.Itoa(r)), shard: i})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// A full 64-bit hash collision between virtual points is
		// astronomically unlikely but must still order deterministically
		// across processes, or two routers could disagree on an owner.
		return m.points[i].shard < m.points[j].shard
	})
	return m, nil
}

// mapFile is the JSON shard-map file format:
//
//	{
//	  "replicas": 128,
//	  "shards": [
//	    {"name": "s1", "addr": "127.0.0.1:7001"},
//	    {"name": "s2", "addr": "127.0.0.1:7002"}
//	  ]
//	}
type mapFile struct {
	Replicas int        `json:"replicas,omitempty"`
	Shards   []MapEntry `json:"shards"`
}

// ParseMapFile loads and validates a shard-map file. Like the tenant
// table, a parse failure is the caller's cue to keep the current map
// (tasm-router does so on SIGHUP).
func ParseMapFile(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: reading map file: %w", err)
	}
	var f mapFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("shard: parsing map file %s: %w", path, err)
	}
	m, err := NewMap(f.Shards, f.Replicas)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// Owner returns the shard owning the named video.
func (m *Map) Owner(video string) MapEntry {
	h := hashKey(video)
	// First point at or clockwise of h, wrapping past the top.
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.entries[m.points[i].shard]
}

// Shards returns the map's entries in file order.
func (m *Map) Shards() []MapEntry { return append([]MapEntry(nil), m.entries...) }

// Replicas returns the virtual-node count per shard.
func (m *Map) Replicas() int { return m.replicas }

// hashKey is the ring's hash: FNV-1a 64, chosen because it is stable
// across processes and Go versions (maphash seeds per process, which
// would make two routers disagree on ownership), finished with a
// 64-bit avalanche mix. The mix matters: raw FNV-1a barely diffuses
// short, similar keys ("s1#0", "s1#1", …), which clusters a shard's
// virtual points and skews a 3-shard ring as far as 50/36/14.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: full avalanche, stable everywhere.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
