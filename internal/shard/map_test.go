package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func threeShards() []MapEntry {
	return []MapEntry{
		{Name: "s1", Addr: "127.0.0.1:7001"},
		{Name: "s2", Addr: "127.0.0.1:7002"},
		{Name: "s3", Addr: "127.0.0.1:7003"},
	}
}

// TestOwnerDeterministicAcrossBuilds: two independently built rings
// over the same entries agree on every owner — the property two
// routers in front of the same fleet depend on (and the reason the
// hash is FNV, not maphash).
func TestOwnerDeterministicAcrossBuilds(t *testing.T) {
	a, err := NewMap(threeShards(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap(threeShards(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := fmt.Sprintf("video-%d", i)
		if a.Owner(v).Name != b.Owner(v).Name {
			t.Fatalf("rings disagree on %q: %s vs %s", v, a.Owner(v).Name, b.Owner(v).Name)
		}
	}
}

// TestOwnerSurvivesAddressChange: the ring hashes names, so moving a
// shard to a new address must not move any video.
func TestOwnerSurvivesAddressChange(t *testing.T) {
	before, err := NewMap(threeShards(), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := threeShards()
	moved[1].Addr = "10.0.0.9:9999"
	after, err := NewMap(moved, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := fmt.Sprintf("video-%d", i)
		if before.Owner(v).Name != after.Owner(v).Name {
			t.Fatalf("address change moved %q: %s -> %s", v, before.Owner(v).Name, after.Owner(v).Name)
		}
	}
}

// TestRemovalOnlyMovesOrphans is consistent hashing's defining
// property: dropping one shard re-homes only the videos it owned.
func TestRemovalOnlyMovesOrphans(t *testing.T) {
	full, err := NewMap(threeShards(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewMap(threeShards()[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := fmt.Sprintf("video-%d", i)
		was := full.Owner(v).Name
		if was != "s3" && reduced.Owner(v).Name != was {
			t.Fatalf("%q moved %s -> %s though its shard survived", v, was, reduced.Owner(v).Name)
		}
	}
}

// TestDistribution: with the default virtual-node count a 3-shard ring
// splits a uniform population roughly evenly. The bound is loose on
// purpose — the test pins "no shard is starved or doubled", not a
// particular split.
func TestDistribution(t *testing.T) {
	m, err := NewMap(threeShards(), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("video-%d", i)).Name]++
	}
	for name, c := range counts {
		if c < n/6 || c > n/2 {
			t.Fatalf("shard %s owns %d of %d (distribution: %v)", name, c, n, counts)
		}
	}
}

func TestMapValidation(t *testing.T) {
	cases := []struct {
		name    string
		entries []MapEntry
	}{
		{"empty", nil},
		{"missing name", []MapEntry{{Addr: "a:1"}}},
		{"missing addr", []MapEntry{{Name: "s1"}}},
		{"dup name", []MapEntry{{Name: "s1", Addr: "a:1"}, {Name: "s1", Addr: "a:2"}}},
		{"dup addr", []MapEntry{{Name: "s1", Addr: "a:1"}, {Name: "s2", Addr: "a:1"}}},
	}
	for _, tc := range cases {
		if _, err := NewMap(tc.entries, 0); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseMapFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	if err := os.WriteFile(path, []byte(`{
		"replicas": 64,
		"shards": [
			{"name": "s1", "addr": "127.0.0.1:7001"},
			{"name": "s2", "addr": "127.0.0.1:7002"}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas() != 64 || len(m.Shards()) != 2 {
		t.Fatalf("replicas %d, shards %v", m.Replicas(), m.Shards())
	}

	for name, content := range map[string]string{
		"bad.json":   `{"shards": [`,
		"empty.json": `{"shards": []}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseMapFile(p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := ParseMapFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: expected error")
	}
}
