// Package shard is TASM's scale-out tier: a consistent-hash shard map
// over tasmd addresses (map.go), per-shard health tracking with a
// breaker (health.go), the frame-order merge that turns K per-video
// cursors into one globally ordered stream (this file), and the
// stateless Router serving tasmd's HTTP surface over all of it
// (router.go).
//
// The merge is the piece the cursor contract from PR 3/4 was built
// for: every source — a local *core* cursor inside tasmd, a remote
// client cursor inside tasm-router — yields results in frame order and
// reports exactly one terminal error, so a k-way heap keyed on
// (frame, source priority) reproduces, streamingly, the order a
// single-node scan of the same data would produce.
package shard

import (
	"github.com/tasm-repro/tasm/internal/core"
)

// Source is one frame-ordered stream feeding a Merge. Both *tasm
// cursors (core.ScanCursor, core.FrameCursor) and remote client
// cursors satisfy it. The Merge relies on the shared cursor contract:
// results arrive in non-decreasing key order, Err is sticky and
// meaningful only after Next returns false, Stats is complete once the
// source is exhausted, and Close is idempotent and releases whatever
// the source holds.
type Source[T any] interface {
	Next() bool
	Result() T
	Err() error
	Stats() core.ScanStats
	Close() error
}

// Merge is a streaming k-way merge of frame-ordered sources into one
// globally frame-ordered stream. Results sharing a key keep source
// priority order (the order sources were passed in) and arrival order
// within a source — the same order a stable sort by frame over the
// concatenated results would produce, which is what makes a
// scatter-gathered scan byte-identical to its single-node equivalent.
//
// Error semantics are first-error-wins with maximal delivery: when a
// source fails, every result already pulled from any source has been
// (or will be) delivered, and the stream then terminates with that
// source's error — the failed source's undelivered frames have unknown
// positions, so continuing with the survivors would silently break
// global order. Merge is not safe for concurrent use, matching the
// cursors it wraps.
type Merge[T any] struct {
	key    func(T) int
	srcs   []Source[T]
	heap   []mergeEntry[T]
	cur    T
	err    error
	inited bool
	closed bool
}

// mergeEntry is one source's buffered head: its next undelivered
// result, keyed for the heap.
type mergeEntry[T any] struct {
	key int
	pri int // index into srcs; the tiebreak that keeps the merge stable
	val T
}

// NewRegionMerge merges scan-result streams by frame number.
func NewRegionMerge(srcs ...Source[core.RegionResult]) *Merge[core.RegionResult] {
	return &Merge[core.RegionResult]{key: func(r core.RegionResult) int { return r.Frame }, srcs: srcs}
}

// NewFrameMerge merges whole-frame streams by frame index.
func NewFrameMerge(srcs ...Source[core.FrameResult]) *Merge[core.FrameResult] {
	return &Merge[core.FrameResult]{key: func(f core.FrameResult) int { return f.Index }, srcs: srcs}
}

// Next advances to the next result in global frame order. It reports
// false when every source is cleanly exhausted, a source has failed
// (Err returns the failure), or the merge was closed.
func (m *Merge[T]) Next() bool {
	if m.closed || m.err != nil {
		return false
	}
	if !m.inited {
		m.inited = true
		for i, s := range m.srcs {
			if s.Next() {
				m.push(mergeEntry[T]{m.key(s.Result()), i, s.Result()})
			} else if err := s.Err(); err != nil {
				m.err = err
				return false
			}
		}
	}
	if len(m.heap) == 0 {
		return false
	}
	e := m.pop()
	m.cur = e.val
	// Refill from the source just drained. If it fails here, the
	// result in hand is still in order (the source's contract says its
	// stream was ordered up to the failure), so it is delivered and the
	// error surfaces on the next call — partial results before a loud
	// stop.
	if s := m.srcs[e.pri]; s.Next() {
		m.push(mergeEntry[T]{m.key(s.Result()), e.pri, s.Result()})
	} else if err := s.Err(); err != nil {
		m.err = err
	}
	return true
}

// Result returns the result Next advanced to.
func (m *Merge[T]) Result() T { return m.cur }

// Err returns the first source failure, nil after clean exhaustion.
func (m *Merge[T]) Err() error { return m.err }

// Stats returns the sum of the sources' stats. Complete once the merge
// is drained (each source reports its own totals at exhaustion).
func (m *Merge[T]) Stats() core.ScanStats {
	var agg core.ScanStats
	for _, s := range m.srcs {
		st := s.Stats()
		agg.IndexWall += st.IndexWall
		agg.DecodeWall += st.DecodeWall
		agg.AssembleWall += st.AssembleWall
		agg.PixelsDecoded += st.PixelsDecoded
		agg.TilesDecoded += st.TilesDecoded
		agg.FramesDecoded += st.FramesDecoded
		agg.RegionsReturned += st.RegionsReturned
		agg.SOTsTouched += st.SOTsTouched
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEvictions += st.CacheEvictions
	}
	return agg
}

// Close closes every source (releasing leases, cancelling remote
// requests) and returns the first close failure. Idempotent.
func (m *Merge[T]) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	for _, s := range m.srcs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// less orders heap entries by (key, source priority): the priority
// tiebreak is what keeps results sharing a frame in source order.
func (m *Merge[T]) less(a, b mergeEntry[T]) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.pri < b.pri
}

func (m *Merge[T]) push(e mergeEntry[T]) {
	m.heap = append(m.heap, e)
	i := len(m.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[parent]) {
			break
		}
		m.heap[i], m.heap[parent] = m.heap[parent], m.heap[i]
		i = parent
	}
}

func (m *Merge[T]) pop() mergeEntry[T] {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	var zero mergeEntry[T]
	m.heap[last] = zero // drop the value for GC; regions hold pixel planes
	m.heap = m.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
	return top
}
