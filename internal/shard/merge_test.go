package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// fakeSource is a scripted merge source: items in order, then an
// optional terminal error (errAt < 0 means clean exhaustion; errAt = n
// means the error fires when item n is requested, so errAt = 0 is a
// source that fails before producing anything).
type fakeSource struct {
	items  []core.RegionResult
	errAt  int
	err    error
	stats  core.ScanStats
	i      int
	cur    core.RegionResult
	closed bool
}

func newFakeSource(items []core.RegionResult) *fakeSource {
	return &fakeSource{items: items, errAt: -1}
}

func (f *fakeSource) Next() bool {
	if f.errAt >= 0 && f.i >= f.errAt {
		return false
	}
	if f.i >= len(f.items) {
		return false
	}
	f.cur = f.items[f.i]
	f.i++
	return true
}

func (f *fakeSource) Result() core.RegionResult { return f.cur }

func (f *fakeSource) Err() error {
	if f.errAt >= 0 && f.i >= f.errAt {
		return f.err
	}
	return nil
}

func (f *fakeSource) Stats() core.ScanStats { return f.stats }
func (f *fakeSource) Close() error          { f.closed = true; return nil }

// region builds a distinguishable result: the pixel payload encodes
// (frame, seq) so byte-identity checks catch any reordering.
func region(frameNo, seq int) core.RegionResult {
	px := frame.New(4, 2)
	for j := range px.Y {
		px.Y[j] = byte(frameNo*31 + seq*7 + j)
	}
	return core.RegionResult{
		Frame:  frameNo,
		Region: geom.Rect{X0: seq, Y0: 0, X1: seq + 4, Y1: 2},
		Pixels: px,
	}
}

func sameRegion(a, b core.RegionResult) bool {
	return a.Frame == b.Frame && a.Region == b.Region && string(a.Pixels.Y) == string(b.Pixels.Y)
}

// TestMergeMatchesConcatenation is the property test behind the
// scatter-gather fidelity bar: merging K frame-ordered sources yields
// exactly the stream a single source holding the stable frame-sorted
// concatenation would — same regions, same bytes, same order —
// across random splits, duplicate frames, empty sources, and K = 1.
func TestMergeMatchesConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(5)
		n := rng.Intn(80)

		// Tag each item with its source up front: the merge's contract
		// is stable frame order with ties broken by source priority, so
		// the expected stream is the stable sort by (frame, source).
		type tagged struct {
			src int
			r   core.RegionResult
		}
		all := make([]tagged, n)
		for i := 0; i < n; i++ {
			// Duplicate frames on purpose: rng.Intn(n/2+1) forces
			// collisions, the case where tie-breaking matters.
			all[i] = tagged{src: rng.Intn(k), r: region(rng.Intn(n/2+1), i)}
		}

		perSrc := make([][]core.RegionResult, k)
		for _, it := range all {
			perSrc[it.src] = append(perSrc[it.src], it.r)
		}
		for s := range perSrc {
			sort.SliceStable(perSrc[s], func(i, j int) bool { return perSrc[s][i].Frame < perSrc[s][j].Frame })
		}
		// Re-derive the expected global order from the now-sorted
		// per-source streams (the merge sees sources already frame-
		// ordered, as remote cursors are).
		var expect []tagged
		for s := range perSrc {
			for _, r := range perSrc[s] {
				expect = append(expect, tagged{src: s, r: r})
			}
		}
		sort.SliceStable(expect, func(i, j int) bool {
			if expect[i].r.Frame != expect[j].r.Frame {
				return expect[i].r.Frame < expect[j].r.Frame
			}
			return expect[i].src < expect[j].src
		})

		srcs := make([]Source[core.RegionResult], k)
		fakes := make([]*fakeSource, k)
		for s := range perSrc {
			fakes[s] = newFakeSource(perSrc[s])
			fakes[s].stats = core.ScanStats{RegionsReturned: len(perSrc[s]), TilesDecoded: s + 1}
			srcs[s] = fakes[s]
		}
		m := NewRegionMerge(srcs...)

		var got []core.RegionResult
		for m.Next() {
			got = append(got, m.Result())
		}
		if err := m.Err(); err != nil {
			t.Fatalf("trial %d: clean merge errored: %v", trial, err)
		}
		if len(got) != len(expect) {
			t.Fatalf("trial %d: merged %d items, want %d", trial, len(got), len(expect))
		}
		for i := range got {
			if !sameRegion(got[i], expect[i].r) {
				t.Fatalf("trial %d item %d: got frame %d region %v, want frame %d region %v",
					trial, i, got[i].Frame, got[i].Region, expect[i].r.Frame, expect[i].r.Region)
			}
		}

		// Stats are the sums; every source is closed exactly once even
		// when Close is called twice.
		wantStats := 0
		for _, f := range fakes {
			wantStats += f.stats.RegionsReturned
		}
		if st := m.Stats(); st.RegionsReturned != wantStats {
			t.Fatalf("trial %d: stats RegionsReturned = %d, want %d", trial, st.RegionsReturned, wantStats)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		for s, f := range fakes {
			if !f.closed {
				t.Fatalf("trial %d: source %d not closed", trial, s)
			}
		}
	}
}

// TestMergeMidStreamError pins the failure contract the router's
// trailer depends on: a source dying mid-stream surfaces its exact
// error after the results already in hand were delivered — maximal
// delivery, first error wins, Err sticky after Next reports false.
func TestMergeMidStreamError(t *testing.T) {
	boom := fmt.Errorf("%w: shard s1 (127.0.0.1:1) went away", tasmerr.ErrShardUnavailable)

	healthy := newFakeSource([]core.RegionResult{region(0, 0), region(2, 1), region(4, 2), region(6, 3)})
	// The failing source delivers its frame-1 item, then dies when the
	// merge refills from it.
	failing := newFakeSource([]core.RegionResult{region(1, 10), region(3, 11)})
	failing.errAt, failing.err = 1, boom

	m := NewRegionMerge(healthy, failing)
	var got []core.RegionResult
	for m.Next() {
		got = append(got, m.Result())
	}
	if err := m.Err(); !errors.Is(err, tasmerr.ErrShardUnavailable) {
		t.Fatalf("Err = %v, want ErrShardUnavailable", err)
	}
	// Partial results first: frame 0 from the healthy source and the
	// failing source's frame-1 item must both have been delivered (the
	// refill failure happens after its item was popped).
	if len(got) < 2 {
		t.Fatalf("only %d results delivered before the error; want the in-hand item delivered", len(got))
	}
	if got[0].Frame != 0 || got[1].Frame != 1 {
		t.Fatalf("delivered frames %d,%d; want 0,1", got[0].Frame, got[1].Frame)
	}
	// Sticky: more Next calls keep failing with the same error.
	if m.Next() {
		t.Fatal("Next() returned true after a terminal error")
	}
	if err := m.Err(); !errors.Is(err, tasmerr.ErrShardUnavailable) {
		t.Fatalf("Err not sticky: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !healthy.closed || !failing.closed {
		t.Fatal("Close did not reach every source")
	}
}

// TestMergeInitError: a source that fails before producing anything
// fails the whole merge with nothing delivered — the stream equivalent
// of an open failure.
func TestMergeInitError(t *testing.T) {
	boom := errors.New("open failed")
	bad := newFakeSource([]core.RegionResult{region(0, 0)})
	bad.errAt, bad.err = 0, boom
	m := NewRegionMerge(newFakeSource([]core.RegionResult{region(1, 1)}), bad)
	if m.Next() {
		t.Fatal("merge delivered a result despite an init error")
	}
	if err := m.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want the init error", err)
	}
}

// TestMergeEmptySources: zero items everywhere is a clean, empty
// stream, and stats still sum.
func TestMergeEmptySources(t *testing.T) {
	a, b := newFakeSource(nil), newFakeSource(nil)
	a.stats = core.ScanStats{IndexWall: time.Millisecond}
	b.stats = core.ScanStats{IndexWall: 2 * time.Millisecond}
	m := NewRegionMerge(a, b)
	if m.Next() {
		t.Fatal("empty merge yielded a result")
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.IndexWall != 3*time.Millisecond {
		t.Fatalf("stats IndexWall = %v", st.IndexWall)
	}
}
