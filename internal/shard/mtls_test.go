package shard_test

// The mTLS auth matrix, mirroring the -tls-client-ca configuration of
// tasmd and tasm-router: the serving TLS config demands a client
// certificate signed by the operator's CA, so an anonymous client or
// one holding a certificate from the wrong CA is refused at the
// handshake, while a properly-provisioned client (client.WithClientCert)
// is served — by the daemon and by the router alike.

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"io"
	"log"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/client"
)

// testCA is one in-test certificate authority able to issue leaves.
type testCA struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
	pool *x509.CertPool
}

func newTestCA(t *testing.T, name string) *testCA {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &testCA{cert: cert, key: key, pool: pool}
}

// issue signs a leaf for server or client auth.
func (ca *testCA) issue(t *testing.T, cn string, usage x509.ExtKeyUsage) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: cn},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{usage},
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
}

// startMTLS serves handler exactly the way tasmd/tasm-router do under
// -tls-cert/-tls-key/-tls-client-ca: server cert for the transport,
// RequireAndVerifyClientCert against the client CA pool.
func startMTLS(t *testing.T, handler http.Handler, serverCert tls.Certificate, clientCA *x509.CertPool) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(handler)
	ts.TLS = &tls.Config{
		Certificates: []tls.Certificate{serverCert},
		ClientCAs:    clientCA,
		ClientAuth:   tls.RequireAndVerifyClientCert,
	}
	// The matrix's refused handshakes are expected; keep them out of
	// the test log.
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts
}

func TestMTLSAuthMatrix(t *testing.T) {
	ca := newTestCA(t, "tasm test ca")
	rogue := newTestCA(t, "rogue ca")
	serverCert := ca.issue(t, "tasmd", x509.ExtKeyUsageServerAuth)
	clientCert := ca.issue(t, "operator", x509.ExtKeyUsageClientAuth)
	rogueCert := rogue.issue(t, "intruder", x509.ExtKeyUsageClientAuth)

	// Both TLS frontends: the daemon itself and the router over it.
	shardNode := startShard(t)
	daemon := startMTLS(t, shardNode.ts.Config.Handler, serverCert, ca.pool)
	routed := newFleet(t, "cam0")
	router := startMTLS(t, routed.ts.Config.Handler, serverCert, ca.pool)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, tier := range []struct {
		name string
		url  string
	}{
		{"tasmd", daemon.URL},
		{"tasm-router", router.URL},
	} {
		t.Run(tier.name, func(t *testing.T) {
			// Provisioned client: serves normally.
			c, err := client.New(tier.url,
				client.WithTLS(&tls.Config{RootCAs: ca.pool}),
				client.WithClientCert(clientCert))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.VideosContext(ctx); err != nil {
				t.Fatalf("mTLS client with valid cert refused: %v", err)
			}

			// Anonymous client: refused at the handshake.
			anon, err := client.New(tier.url, client.WithTLS(&tls.Config{RootCAs: ca.pool}))
			if err != nil {
				t.Fatal(err)
			}
			defer anon.Close()
			if _, err := anon.VideosContext(ctx); err == nil {
				t.Fatal("client without a certificate was served")
			}

			// Certificate from the wrong CA: refused too.
			bad, err := client.New(tier.url,
				client.WithTLS(&tls.Config{RootCAs: ca.pool}),
				client.WithClientCert(rogueCert))
			if err != nil {
				t.Fatal(err)
			}
			defer bad.Close()
			if _, err := bad.VideosContext(ctx); err == nil {
				t.Fatal("client with a wrong-CA certificate was served")
			}
		})
	}
}
