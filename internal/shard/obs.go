package shard

// Router observability: the registry behind /metrics, the trace ring
// behind /v1/trace/{id}, and the per-shard latency histograms. The
// per-shard health and routed-request series that predate the registry
// (tasm_router_shard_up & co.) keep their exact names, label shapes,
// and HELP text — they just render through the registry now, which
// refuses any series registered without a HELP line.

import (
	"fmt"
	"net/http"
	"time"

	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// routerMetrics is every registered series the routing tier updates.
type routerMetrics struct {
	reg       *obs.Registry
	panics    *obs.CounterVec   // unlabeled
	slow      *obs.CounterVec   // {endpoint}
	reqWall   *obs.HistogramVec // {endpoint} seconds
	reqTTFR   *obs.HistogramVec // {endpoint} seconds
	respSize  *obs.HistogramVec // {endpoint} bytes
	shardWall *obs.HistogramVec // {shard} seconds
}

func newRouterMetrics(rt *Router) *routerMetrics {
	reg := obs.NewRegistry()

	// Per-shard breaker and counter series, read from the live shard
	// states at scrape time so a SIGHUP map reload re-shapes the label
	// set without re-registration.
	perShard := func(name, typ, help string, value func(st *shardState) float64) {
		reg.NewSeriesFunc(name, typ, help, []string{"shard"}, func() []obs.Sample {
			states := rt.statesSnapshot()
			out := make([]obs.Sample, len(states))
			for i, st := range states {
				out[i] = obs.Sample{LabelValues: []string{st.name}, Value: value(st)}
			}
			return out
		})
	}
	perShard("tasm_router_shard_up", "gauge",
		"Whether the router's breaker considers the shard healthy.",
		func(st *shardState) float64 {
			if st.isDown() {
				return 0
			}
			return 1
		})
	perShard("tasm_router_shard_consecutive_failures", "gauge",
		"Probe and request failures since the shard's last success.",
		func(st *shardState) float64 {
			_, consec := st.snapshot()
			return float64(consec)
		})
	perShard("tasm_router_requests_total", "counter",
		"Requests routed to the shard (streams and fan-out calls included).",
		func(st *shardState) float64 { return float64(st.requests.Load()) })
	perShard("tasm_router_request_failures_total", "counter",
		"Transport-level failures observed against the shard.",
		func(st *shardState) float64 { return float64(st.failures.Load()) })

	return &routerMetrics{
		reg:    reg,
		panics: reg.NewCounterVec("tasm_router_request_panics_total", "Handler panics recovered into 500 responses."),
		slow:   reg.NewCounterVec("tasm_router_slow_queries_total", "Requests at or above -slow-query-threshold, by endpoint.", "endpoint"),
		reqWall: reg.NewHistogramVec("tasm_router_request_seconds",
			"Request wall time from arrival to last byte, by endpoint.",
			obs.DefaultLatencyBuckets, "endpoint"),
		reqTTFR: reg.NewHistogramVec("tasm_router_request_ttfr_seconds",
			"Time to first response byte (streaming endpoints: first result), by endpoint.",
			obs.DefaultLatencyBuckets, "endpoint"),
		respSize: reg.NewHistogramVec("tasm_router_response_size_bytes",
			"Response body size, by endpoint.",
			obs.DefaultSizeBuckets, "endpoint"),
		shardWall: reg.NewHistogramVec("tasm_router_shard_seconds",
			"Wall time of routed calls against each shard (streaming paths count the cursor open, not the relay).",
			obs.DefaultLatencyBuckets, "shard"),
	}
}

// observeShard folds one routed call's wall time into the per-shard
// latency histogram.
func (rt *Router) observeShard(st *shardState, begin time.Time) {
	rt.metrics.shardWall.With(st.name).Observe(time.Since(begin).Seconds())
}

// handleTrace serves one finished request's span timeline from the
// router's own ring. Shard-side spans live in the shards' rings under
// the same id — the router forwards the inbound trace id on every hop.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := rt.traces.Get(id)
	if !ok {
		rpcwire.WriteError(w, fmt.Errorf("%w: id %q is not among the most recent finished requests", rpcwire.ErrTraceNotFound, id))
		return
	}
	rpcwire.WriteJSON(w, rec)
}
