package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// RouterConfig tunes the routing tier.
type RouterConfig struct {
	// Logger receives diagnostics: recovered panics, shard up/down
	// transitions; nil discards.
	Logger *log.Logger
	// AccessLogger receives per-request access lines; nil falls back to
	// Logger.
	AccessLogger *log.Logger
	// HealthInterval is the period between /v1/healthz probes of every
	// shard; <= 0 means DefaultHealthInterval.
	HealthInterval time.Duration
	// BreakerThreshold is the consecutive-failure count (probes and
	// routed requests combined) that marks a shard down; <= 0 means
	// DefaultBreakerThreshold.
	BreakerThreshold int
	// ShardToken is the bearer token for router→shard requests, for
	// shard fleets running tasmd -token-file. Empty sends no token.
	ShardToken string
	// MaxBodyBytes bounds a request body; <= 0 means 1 GiB (matching
	// tasmd — the router forwards ingests, so the bounds must agree).
	MaxBodyBytes int64
	// SlowQueryThreshold logs any request whose wall time reaches it
	// (level=slow_query, and the tasm_router_slow_queries_total counter
	// ticks); 0 disables the slow-query log.
	SlowQueryThreshold time.Duration
	// TraceCapacity bounds the /v1/trace/{id} ring of recent finished
	// requests; <= 0 means obs.DefaultTraceCapacity.
	TraceCapacity int
}

// Router is the stateless scale-out tier: an http.Handler serving
// tasmd's exact HTTP surface (client/ and tasmctl -addr work against it
// unchanged) by routing each operation over a consistent-hash shard
// map. Video-scoped operations go to the owning shard; store-scoped
// ones (catalog, stats, gc, fsck, autotile) fan out to every shard and
// merge; the streaming paths scatter per-video remote cursors and
// gather them through the frame-order Merge, re-encoded in whatever
// framing the caller negotiated.
//
// "Stateless" is precise: the router holds no video data and no
// catalog, only the shard map and per-shard health — kill it and start
// another with the same map file and nothing is lost.
type Router struct {
	cfg     RouterConfig
	mux     *http.ServeMux
	metrics *routerMetrics
	traces  *obs.TraceStore

	mu     sync.Mutex
	m      *Map
	states map[string]*shardState
	order  []*shardState // current map's entry order, for deterministic fan-out

	stopCh    chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewRouter builds the routing tier over an initial map and starts the
// health prober. Callers own the returned Router's lifecycle: Close
// stops the prober and releases backend connections.
func NewRouter(m *Map, cfg RouterConfig) (*Router, error) {
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.AccessLogger == nil {
		cfg.AccessLogger = cfg.Logger
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	rt := &Router{
		cfg:    cfg,
		states: make(map[string]*shardState),
		stopCh: make(chan struct{}),
		traces: obs.NewTraceStore(cfg.TraceCapacity),
	}
	rt.metrics = newRouterMetrics(rt)
	if err := rt.SetMap(m); err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/videos", rt.handleVideos)
	mux.HandleFunc("GET /v1/videos/{video}", rt.handleVideoInfo)
	mux.HandleFunc("DELETE /v1/videos/{video}", rt.handleDeleteVideo)
	mux.HandleFunc("POST /v1/ingest", rt.handleIngest)
	mux.HandleFunc("POST /v1/live", rt.handleCreateLive)
	mux.HandleFunc("POST /v1/append", rt.handleAppend)
	mux.HandleFunc("GET /v1/subscribe", rt.handleSubscribe)
	mux.HandleFunc("POST /v1/seal", rt.handleSeal)
	mux.HandleFunc("POST /v1/retention", rt.handleRetention)
	mux.HandleFunc("POST /v1/metadata", rt.handleMetadata)
	mux.HandleFunc("POST /v1/markdetected", rt.handleMarkDetected)
	mux.HandleFunc("GET /v1/detections", rt.handleDetections)
	mux.HandleFunc("POST /v1/scan", rt.handleScan)
	mux.HandleFunc("POST /v1/decodeframes", rt.handleDecodeFrames)
	mux.HandleFunc("POST /v1/retile", rt.handleRetile)
	mux.HandleFunc("POST /v1/designlayout", rt.handleDesignLayout)
	mux.HandleFunc("POST /v1/gc", rt.handleGC)
	mux.HandleFunc("POST /v1/fsck", rt.handleFsck)
	mux.HandleFunc("POST /v1/repair", rt.handleRepair)
	mux.HandleFunc("POST /v1/repairstore", rt.handleRepairStore)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/shards", rt.handleShards)
	mux.HandleFunc("GET /v1/autotile/status", rt.handleAutotileStatus)
	mux.HandleFunc("POST /v1/autotile/pause", rt.handleAutotilePause)
	mux.HandleFunc("POST /v1/autotile/resume", rt.handleAutotileResume)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /v1/trace/{id}", rt.handleTrace)
	rt.mux = mux

	rt.probeWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// SetMap atomically replaces the shard map (tasm-router calls it on
// SIGHUP). Per-shard state is keyed by name and survives the swap when
// the address is unchanged — health and counters carry over — while a
// shard whose address moved gets a fresh client and a clean breaker.
// In-flight requests finish against the clients they started with.
func (rt *Router) SetMap(m *Map) error {
	entries := m.Shards()
	fresh := make(map[string]*shardState, len(entries))
	order := make([]*shardState, 0, len(entries))

	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, e := range entries {
		if st := rt.states[e.Name]; st != nil && st.addr == e.Addr {
			fresh[e.Name] = st
			order = append(order, st)
			continue
		}
		c, err := client.New(e.Addr,
			client.WithEncoding(client.Binary),
			client.WithToken(rt.cfg.ShardToken),
			client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond}))
		if err != nil {
			for _, st := range order {
				if rt.states[st.name] == nil { // only the ones this call created
					_ = st.c.Close()
				}
			}
			return fmt.Errorf("shard %s: %w", e.Name, err)
		}
		st := &shardState{name: e.Name, addr: e.Addr, c: c}
		fresh[e.Name] = st
		order = append(order, st)
	}
	for name, st := range rt.states {
		if fresh[name] != st {
			_ = st.c.Close() // dropped or re-addressed: release idle conns
		}
	}
	rt.m, rt.states, rt.order = m, fresh, order
	return nil
}

// Map returns the current shard map.
func (rt *Router) Map() *Map {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.m
}

// statesSnapshot returns the current shards in map order.
func (rt *Router) statesSnapshot() []*shardState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*shardState(nil), rt.order...)
}

// Close stops the health prober and releases backend connections.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stopCh)
		rt.probeWG.Wait()
		for _, st := range rt.statesSnapshot() {
			_ = st.c.Close()
		}
	})
}

// ---- request routing and error classification ----

// owner resolves the shard owning video and fails fast (without
// dialing) when its breaker is open.
func (rt *Router) owner(video string) (*shardState, error) {
	rt.mu.Lock()
	e := rt.m.Owner(video)
	st := rt.states[e.Name]
	rt.mu.Unlock()
	if st.isDown() {
		return nil, rt.downErr(st)
	}
	st.requests.Add(1)
	return st, nil
}

// downErr is the fail-fast error for an open breaker.
func (rt *Router) downErr(st *shardState) error {
	_, consec := st.snapshot()
	return fmt.Errorf("%w: shard %s (%s): breaker open after %d consecutive failures",
		tasmerr.ErrShardUnavailable, st.name, st.addr, consec)
}

// classify folds one routed call's outcome into the shard's breaker and
// translates transport failures into ErrShardUnavailable. A typed
// remote error passes through untouched — the shard is alive and spoke
// the protocol; video_not_found from a healthy shard is the caller's
// problem, not an outage — and context errors belong to the caller, so
// they neither feed the breaker nor get reclassified.
func (rt *Router) classify(st *shardState, err error) error {
	if err == nil {
		if st.recordSuccess() {
			rt.cfg.Logger.Printf("shard %s (%s) up", st.name, st.addr)
		}
		return nil
	}
	var re *rpcwire.RemoteError
	if errors.As(err, &re) {
		if st.recordSuccess() {
			rt.cfg.Logger.Printf("shard %s (%s) up", st.name, st.addr)
		}
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if st.recordFailure(rt.cfg.BreakerThreshold) {
		rt.cfg.Logger.Printf("shard %s (%s) down: %v", st.name, st.addr, err)
	}
	return fmt.Errorf("%w: shard %s (%s): %v", tasmerr.ErrShardUnavailable, st.name, st.addr, err)
}

// fanResult is one shard's outcome in a fan-out aggregation.
type fanResult[T any] struct {
	st  *shardState
	val T
	err error
}

// fanOut runs fn against every shard concurrently, classifying each
// outcome. Down shards fail fast without dialing. Results come back in
// map order, so "first error wins" is deterministic.
func fanOut[T any](rt *Router, fn func(st *shardState) (T, error)) []fanResult[T] {
	states := rt.statesSnapshot()
	out := make([]fanResult[T], len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *shardState) {
			defer wg.Done()
			out[i].st = st
			if st.isDown() {
				out[i].err = rt.downErr(st)
				return
			}
			st.requests.Add(1)
			t0 := time.Now()
			v, err := fn(st)
			rt.observeShard(st, t0)
			out[i].val, out[i].err = v, rt.classify(st, err)
		}(i, st)
	}
	wg.Wait()
	return out
}

// firstError returns the first failure of a fan-out, in map order.
func firstError[T any](results []fanResult[T]) error {
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// ---- middleware ----

// ServeHTTP is the router's stack: recover → trace → observe → body
// cap → route. There is no auth or admission layer here — the shards
// enforce their own (the router forwards its configured shard token),
// and the router does no storage work worth admission-controlling. The
// trace id — adopted from the caller when valid, minted otherwise —
// travels the request context into every shard hop (the backend
// clients forward it as Tasm-Trace-Id), so one id indexes the trace
// rings of the router and every shard that served the request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lw := &accessWriter{ResponseWriter: w}
	start := time.Now()
	tid := r.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(tid) {
		tid = obs.NewTraceID()
	}
	tr := obs.NewTrace(tid)
	tr.Annotate("method", r.Method)
	tr.Annotate("path", r.URL.Path)
	tr.Annotate("tier", "router")
	lw.Header().Set(obs.TraceHeader, tid)
	r = r.WithContext(obs.WithTrace(r.Context(), tr))
	defer func() {
		if p := recover(); p != nil {
			rt.metrics.panics.With().Inc()
			rt.cfg.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !lw.wrote {
				rpcwire.WriteError(lw, fmt.Errorf("internal panic: %v", p))
			}
		}
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		dur := time.Since(start)
		status := lw.status()
		m := rt.metrics
		m.reqWall.With(endpoint).Observe(dur.Seconds())
		var ttfr time.Duration
		if !lw.firstWrite.IsZero() {
			ttfr = lw.firstWrite.Sub(start)
			m.reqTTFR.With(endpoint).Observe(ttfr.Seconds())
		}
		m.respSize.With(endpoint).Observe(float64(lw.bytes))

		tr.Annotate("endpoint", endpoint)
		tr.Annotate("status", strconv.Itoa(status))
		rt.traces.Put(tr.Snapshot())

		rec := obs.AccessRecord{
			Level:    "access",
			TraceID:  tid,
			Method:   r.Method,
			Path:     r.URL.Path,
			Endpoint: endpoint,
			Status:   status,
			Bytes:    lw.bytes,
			DurMS:    obs.Msec(dur),
			TTFRMS:   obs.Msec(ttfr),
			Remote:   r.RemoteAddr,
		}
		rt.cfg.AccessLogger.Print(rec.Line())
		if thr := rt.cfg.SlowQueryThreshold; thr > 0 && dur >= thr {
			m.slow.With(endpoint).Inc()
			rec.Level = "slow_query"
			rec.ThresholdMS = obs.Msec(thr)
			rt.cfg.Logger.Print(rec.Line())
		}
	}()
	r.Body = http.MaxBytesReader(lw, r.Body, rt.cfg.MaxBodyBytes)
	rt.mux.ServeHTTP(lw, r)
}

// accessWriter captures status, bytes, and time-to-first-byte for the
// access line and histograms, and keeps http.Flusher reachable (the
// streaming paths flush per record).
type accessWriter struct {
	http.ResponseWriter
	code       int
	bytes      int64
	wrote      bool
	firstWrite time.Time
}

func (w *accessWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.code = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *accessWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.code = true, http.StatusOK
	}
	if w.firstWrite.IsZero() {
		w.firstWrite = time.Now()
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *accessWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *accessWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// ---- unary handlers: video-scoped (route to owner) ----

// routed runs one video-scoped operation against the owner shard and
// writes the JSON response or the classified error.
func routed[T any](rt *Router, w http.ResponseWriter, video string, fn func(st *shardState) (T, error)) {
	st, err := rt.owner(video)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	t0 := time.Now()
	v, err := fn(st)
	rt.observeShard(st, t0)
	if err = rt.classify(st, err); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	rpcwire.WriteJSON(w, v)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rpcwire.WriteJSON(w, struct {
		OK bool `json:"ok"`
	}{true})
}

func (rt *Router) handleVideoInfo(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	video := r.PathValue("video")
	routed(rt, w, video, func(st *shardState) (rpcwire.VideoInfo, error) {
		meta, bytes, labels, err := st.c.VideoInfoContext(r.Context(), video)
		return rpcwire.VideoInfo{Meta: meta, Bytes: bytes, Labels: labels}, err
	})
}

func (rt *Router) handleDeleteVideo(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	video := r.PathValue("video")
	routed(rt, w, video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.DeleteVideoContext(r.Context(), video)
	})
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.IngestRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	// Validate frames at the boundary, exactly like tasmd: a malformed
	// upload is the caller's bad_request, not a shard round trip.
	frames := make([]*tasm.Frame, len(req.Frames))
	for i, wf := range req.Frames {
		if frames[i], err = wf.ToFrame(); err != nil {
			rpcwire.WriteError(w, fmt.Errorf("frame %d: %w", i, err))
			return
		}
	}
	routed(rt, w, req.Video, func(st *shardState) (rpcwire.IngestStats, error) {
		var stats tasm.IngestStats
		var err error
		if len(req.Layouts) > 0 {
			layouts := make([]tasm.Layout, len(req.Layouts))
			for i, wl := range req.Layouts {
				layouts[i] = wl.ToLayout()
			}
			stats, err = st.c.IngestTiledContext(ctx, req.Video, frames, req.FPS, layouts)
		} else {
			stats, err = st.c.IngestContext(ctx, req.Video, frames, req.FPS)
		}
		return rpcwire.FromIngestStats(stats), err
	})
}

// ---- live ingest: route to the owning shard ----

func (rt *Router) handleCreateLive(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.CreateLiveRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.CreateLiveContext(r.Context(), req.Video, req.W, req.H, req.FPS,
			req.Retention.ToRetentionPolicy())
	})
}

// handleAppend forwards a frame batch to the owning shard. Like
// handleIngest it validates frames at the boundary (either body form —
// the binary TASMFRM2 stream or the JSON fallback) so a malformed
// upload is the caller's bad_request, then re-frames them over the
// always-binary router→shard hop. A shard's backpressure 429 passes
// through typed, Retry-After restored, so the client's retry logic
// behaves identically through the router.
func (rt *Router) handleAppend(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	var video string
	var frames []*tasm.Frame
	if strings.HasPrefix(r.Header.Get("Content-Type"), rpcwire.ContentTypeBinary) {
		video = r.URL.Query().Get("video")
		if video == "" {
			rpcwire.WriteError(w, fmt.Errorf("%w: binary append needs ?video=", rpcwire.ErrBadRequest))
			return
		}
		fr := rpcwire.NewFrameStreamReader(r.Body)
		for {
			line, rerr := fr.ReadLine()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				rpcwire.WriteError(w, fmt.Errorf("%w: append stream: %v", rpcwire.ErrBadRequest, rerr))
				return
			}
			if line.Frame == nil {
				rpcwire.WriteError(w, fmt.Errorf("%w: append stream carries only frame records", rpcwire.ErrBadRequest))
				return
			}
			f, ferr := line.Frame.Pixels.ToFrame()
			if ferr != nil {
				rpcwire.WriteError(w, fmt.Errorf("frame %d: %w", len(frames), ferr))
				return
			}
			frames = append(frames, f)
		}
	} else {
		var req rpcwire.AppendRequest
		if err := rpcwire.ReadJSON(r, &req); err != nil {
			rpcwire.WriteError(w, err)
			return
		}
		video = req.Video
		frames = make([]*tasm.Frame, len(req.Frames))
		for i, wf := range req.Frames {
			if frames[i], err = wf.ToFrame(); err != nil {
				rpcwire.WriteError(w, fmt.Errorf("frame %d: %w", i, err))
				return
			}
		}
	}
	st, err := rt.owner(video)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	t0 := time.Now()
	stats, err := st.c.AppendContext(ctx, video, frames)
	rt.observeShard(st, t0)
	if err = rt.classify(st, err); err != nil {
		if errors.Is(err, tasmerr.ErrIngestBackpressure) {
			w.Header().Set("Retry-After", "1")
		}
		rpcwire.WriteError(w, err)
		return
	}
	rpcwire.WriteJSON(w, rpcwire.FromAppendStats(stats))
}

// handleSubscribe relays a live tail from the owning shard — the same
// single-owner stream shape as handleDecodeFrames, but long-lived: the
// relay holds one upstream subscription for as long as the caller
// stays connected, and a SIGHUP map reload does not touch it (in-flight
// requests keep the shard client they started with; only new
// subscriptions see the new map). A shard SIGKILLed mid-tail surfaces
// shard_unavailable through the stream's error trailer, the client's
// cue to resubscribe from its watermark once the shard returns.
func (rt *Router) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	video := qs.Get("video")
	if video == "" {
		rpcwire.WriteError(w, fmt.Errorf("%w: need video", rpcwire.ErrBadRequest))
		return
	}
	from := 0
	if h := qs.Get("from"); h != "" {
		v, aerr := strconv.Atoi(h)
		if aerr != nil || v < 0 {
			rpcwire.WriteError(w, fmt.Errorf("%w: from=%q", rpcwire.ErrBadRequest, h))
			return
		}
		from = v
	}
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	tr := obs.FromContext(r.Context())
	endRoute := tr.StartSpan("route")
	st, err := rt.owner(video)
	if err != nil {
		endRoute()
		rpcwire.WriteError(w, err)
		return
	}
	t0 := time.Now()
	cur, err := st.c.Subscribe(ctx, video, from)
	rt.observeShard(st, t0)
	endRoute("video", video, "shard", st.name)
	if err != nil {
		rpcwire.WriteError(w, rt.classify(st, err))
		return
	}
	src := &frameSource{shardStream: shardStream{rt: rt, st: st}, cur: cur}
	defer src.Close()
	relayStart := time.Now()
	rpcwire.ServeStream(w, r, src, func(s *frameSource) rpcwire.StreamLine {
		fl := rpcwire.FromFrameResult(s.Result())
		return rpcwire.StreamLine{Frame: &fl}
	})
	tr.AddSpan("relay", relayStart, time.Since(relayStart), "shard", st.name)
}

func (rt *Router) handleSeal(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.SealRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.SealContext(r.Context(), req.Video)
	})
}

func (rt *Router) handleRetention(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RetentionRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (rpcwire.TrimReport, error) {
		rep, err := st.c.SetRetentionContext(r.Context(), req.Video, req.Retention.ToRetentionPolicy())
		return rpcwire.FromTrimReport(rep), err
	})
}

func (rt *Router) handleMetadata(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.MetadataRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	ds := make([]tasm.Detection, len(req.Detections))
	for i, d := range req.Detections {
		ds[i] = d.ToDetection()
	}
	routed(rt, w, req.Video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.AddDetectionsContext(r.Context(), req.Video, ds)
	})
}

func (rt *Router) handleMarkDetected(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.MarkDetectedRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.MarkDetectedContext(r.Context(), req.Video, req.Label, req.From, req.To)
	})
}

func (rt *Router) handleDetections(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	video, label := q.Get("video"), q.Get("label")
	from, err1 := strconv.Atoi(q.Get("from"))
	to, err2 := strconv.Atoi(q.Get("to"))
	if video == "" || label == "" || err1 != nil || err2 != nil {
		rpcwire.WriteError(w, fmt.Errorf("%w: need video, label, from, to", rpcwire.ErrBadRequest))
		return
	}
	routed(rt, w, video, func(st *shardState) (rpcwire.DetectionsResponse, error) {
		ds, err := st.c.LookupDetectionsContext(r.Context(), video, label, from, to)
		resp := rpcwire.DetectionsResponse{Detections: make([]rpcwire.Detection, len(ds))}
		for i, d := range ds {
			resp.Detections[i] = rpcwire.FromDetection(d)
		}
		return resp, err
	})
}

func (rt *Router) handleRetile(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RetileRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	routed(rt, w, req.Video, func(st *shardState) (rpcwire.RetileStats, error) {
		stats, err := st.c.RetileSOTContext(ctx, req.Video, req.SOT, req.Layout.ToLayout())
		return rpcwire.FromRetileStats(stats), err
	})
}

func (rt *Router) handleDesignLayout(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.DesignLayoutRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (rpcwire.DesignLayoutResponse, error) {
		l, err := st.c.DesignLayoutContext(r.Context(), req.Video, req.SOT, req.Labels)
		return rpcwire.DesignLayoutResponse{Layout: rpcwire.FromLayout(l)}, err
	})
}

func (rt *Router) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RepairRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	routed(rt, w, req.Video, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.RepairPointersContext(r.Context(), req.Video)
	})
}

// ---- unary handlers: store-scoped (fan out and merge) ----

func (rt *Router) handleVideos(w http.ResponseWriter, r *http.Request) {
	results := fanOut(rt, func(st *shardState) ([]string, error) {
		return st.c.VideosContext(r.Context())
	})
	// A partial catalog is a silent lie — fail loudly instead.
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	seen := map[string]bool{}
	var all []string
	for _, res := range results {
		for _, v := range res.val {
			if !seen[v] {
				seen[v] = true
				all = append(all, v)
			}
		}
	}
	sort.Strings(all)
	rpcwire.WriteJSON(w, rpcwire.VideosResponse{Videos: all})
}

func (rt *Router) handleGC(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	results := fanOut(rt, func(st *shardState) (tasm.GCReport, error) {
		return st.c.GCContext(r.Context())
	})
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	var merged rpcwire.GCReport
	for _, res := range results {
		merged.Removed = append(merged.Removed, prefixAll(res.st.name, res.val.Removed)...)
		merged.Deferred = append(merged.Deferred, prefixAll(res.st.name, res.val.Deferred)...)
	}
	rpcwire.WriteJSON(w, merged)
}

func (rt *Router) handleFsck(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	results := fanOut(rt, func(st *shardState) (tasm.FsckReport, error) {
		return st.c.FSCKContext(r.Context())
	})
	// An unreachable shard must fail the check: "clean" may not be
	// claimed for state that could not be verified.
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	var merged rpcwire.FsckReport
	for _, res := range results {
		merged.Videos += res.val.Videos
		merged.SOTs += res.val.SOTs
		merged.Tiles += res.val.Tiles
		merged.Leases += res.val.Leases
		merged.Problems = append(merged.Problems, prefixAll(res.st.name, res.val.Problems)...)
		merged.Orphans = append(merged.Orphans, prefixAll(res.st.name, res.val.Orphans)...)
	}
	rpcwire.WriteJSON(w, merged)
}

func (rt *Router) handleRepairStore(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	results := fanOut(rt, func(st *shardState) (tasm.RepairReport, error) {
		return st.c.RepairStoreContext(r.Context())
	})
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	var merged rpcwire.StoreRepairReport
	for _, res := range results {
		merged.Quarantined = append(merged.Quarantined, prefixAll(res.st.name, res.val.Quarantined)...)
		merged.Reverted = append(merged.Reverted, prefixAll(res.st.name, res.val.Reverted)...)
		merged.Videos = append(merged.Videos, prefixAll(res.st.name, res.val.Videos)...)
	}
	rpcwire.WriteJSON(w, merged)
}

// handleStats degrades gracefully where the other aggregations fail
// loudly: stats are observability, and an outage is exactly when the
// operator needs the per-shard view — so a down shard appears in the
// breakdown with its error while the totals cover the healthy ones.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	results := fanOut(rt, func(st *shardState) (tasm.CacheStats, error) {
		return st.c.CacheStatsContext(r.Context())
	})
	var resp rpcwire.ShardedCacheStats
	for _, res := range results {
		down, _ := res.st.snapshot()
		sc := rpcwire.ShardCacheStats{Shard: res.st.name, Addr: res.st.addr, Healthy: !down}
		if res.err != nil {
			sc.Error = res.err.Error()
		} else {
			sc.Stats = rpcwire.FromCacheStats(res.val)
			resp.Hits += sc.Stats.Hits
			resp.Misses += sc.Stats.Misses
			resp.Evictions += sc.Stats.Evictions
			resp.Invalidations += sc.Stats.Invalidations
			resp.BytesCached += sc.Stats.BytesCached
			resp.Entries += sc.Stats.Entries
			resp.Budget += sc.Stats.Budget
		}
		resp.Shards = append(resp.Shards, sc)
	}
	rpcwire.WriteJSON(w, resp)
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	m, order := rt.m, append([]*shardState(nil), rt.order...)
	rt.mu.Unlock()
	resp := rpcwire.ShardsResponse{Replicas: m.Replicas()}
	for _, st := range order {
		down, consec := st.snapshot()
		resp.Shards = append(resp.Shards, rpcwire.ShardInfo{
			Name: st.name, Addr: st.addr, Healthy: !down, ConsecutiveFailures: consec,
		})
	}
	rpcwire.WriteJSON(w, resp)
}

func (rt *Router) handleAutotileStatus(w http.ResponseWriter, r *http.Request) {
	results := fanOut(rt, func(st *shardState) (tasm.AutotileStatus, error) {
		return st.c.AutotileStatusContext(r.Context())
	})
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	var merged rpcwire.AutotileStatus
	for _, res := range results {
		s := res.val
		merged.Enabled = merged.Enabled || s.Enabled
		merged.Paused = merged.Paused || s.Paused
		if merged.PauseReason == "" {
			merged.PauseReason = s.PauseReason
		}
		merged.QueriesObserved += s.QueriesObserved
		merged.QueriesPending += s.QueriesPending
		merged.QueriesDropped += s.QueriesDropped
		merged.ActionsApplied += s.ActionsApplied
		merged.ActionsFailed += s.ActionsFailed
		merged.BytesSpent += s.BytesSpent
		merged.IOBudget += s.IOBudget
		merged.Regret += s.Regret
		if merged.LastAction == "" {
			merged.LastAction = s.LastAction
		}
		if merged.LastError == "" {
			merged.LastError = s.LastError
		}
	}
	rpcwire.WriteJSON(w, merged)
}

func (rt *Router) handleAutotilePause(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.AutotilePauseRequest
	if r.ContentLength != 0 {
		if err := rpcwire.ReadJSON(r, &req); err != nil {
			rpcwire.WriteError(w, err)
			return
		}
	}
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	results := fanOut(rt, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.AutotilePauseContext(r.Context(), req.Reason)
	})
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	rpcwire.WriteJSON(w, struct{}{})
}

func (rt *Router) handleAutotileResume(w http.ResponseWriter, r *http.Request) {
	if !rpcwire.UnaryBoundary(w, r) {
		return
	}
	results := fanOut(rt, func(st *shardState) (struct{}, error) {
		return struct{}{}, st.c.AutotileResumeContext(r.Context())
	})
	if err := firstError(results); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	rpcwire.WriteJSON(w, struct{}{})
}

// prefixAll tags report lines with the shard they came from, so a
// merged fsck/gc report still tells the operator where to look.
func prefixAll(shard string, lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = shard + ": " + l
	}
	return out
}

// ---- streaming handlers: scatter-gather ----

// shardStream classifies a remote cursor's terminal error exactly once:
// a typed remote failure (the shard reported video_not_found, the
// stream trailer carried a sentinel) passes through so the caller gets
// the exact tasm.Err* identity; a transport-level death mid-stream —
// the SIGKILLed-shard case — feeds the breaker and becomes
// ErrShardUnavailable.
type shardStream struct {
	rt         *Router
	st         *shardState
	classified error
	done       bool
}

func (b *shardStream) translate(err error) error {
	if err == nil {
		return nil
	}
	if !b.done {
		b.done = true
		b.classified = b.rt.classify(b.st, err)
	}
	return b.classified
}

// scanSource adapts one shard's remote scan cursor into a merge source.
type scanSource struct {
	shardStream
	cur *client.ScanCursor
}

func (s *scanSource) Next() bool                { return s.cur.Next() }
func (s *scanSource) Result() core.RegionResult { return s.cur.Result() }
func (s *scanSource) Err() error                { return s.translate(s.cur.Err()) }
func (s *scanSource) Stats() core.ScanStats     { return s.cur.Stats() }
func (s *scanSource) Close() error              { return s.cur.Close() }

// frameSource adapts one shard's remote frame cursor the same way.
type frameSource struct {
	shardStream
	cur *client.FrameCursor
}

func (s *frameSource) Next() bool               { return s.cur.Next() }
func (s *frameSource) Result() core.FrameResult { return s.cur.Result() }
func (s *frameSource) Err() error               { return s.translate(s.cur.Err()) }
func (s *frameSource) Stats() core.ScanStats    { return s.cur.Stats() }
func (s *frameSource) Close() error             { return s.cur.Close() }

// handleScan is the scatter-gather core: one remote cursor per queried
// video, opened concurrently against the owning shards, gathered
// through the frame-order Merge, re-encoded in the framing the caller
// negotiated (router→shard always runs binary; the two hops negotiate
// independently). Opening fails the request whole — before the 200 —
// while a shard dying mid-stream surfaces shard_unavailable through
// the shared trailer after the regions already delivered.
func (rt *Router) handleScan(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.ScanRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	if (req.SQL == "") == (req.Query == nil) {
		rpcwire.WriteError(w, fmt.Errorf("%w: exactly one of sql and query must be set", rpcwire.ErrBadRequest))
		return
	}
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	q := tasm.Query{}
	if req.SQL != "" {
		if q, err = tasm.ParseQuery(req.SQL); err != nil {
			rpcwire.WriteError(w, fmt.Errorf("%w: %v", rpcwire.ErrBadRequest, err))
			return
		}
	} else {
		q = req.Query.ToQuery()
	}

	tr := obs.FromContext(r.Context())
	vids := q.VideoList()
	endRoute := tr.StartSpan("route")
	srcs := make([]Source[core.RegionResult], len(vids))
	errs := make([]error, len(vids))
	var wg sync.WaitGroup
	for i, video := range vids {
		wg.Add(1)
		go func(i int, video string) {
			defer wg.Done()
			st, err := rt.owner(video)
			if err != nil {
				errs[i] = err
				return
			}
			sq := q
			sq.Video, sq.Videos = video, nil
			t0 := time.Now()
			cur, err := st.c.ScanCursor(ctx, sq)
			rt.observeShard(st, t0)
			if err != nil {
				errs[i] = rt.classify(st, err)
				return
			}
			srcs[i] = &scanSource{shardStream: shardStream{rt: rt, st: st}, cur: cur}
		}(i, video)
	}
	wg.Wait()
	endRoute("videos", strconv.Itoa(len(vids)))
	for _, err := range errs {
		if err != nil {
			for _, s := range srcs {
				if s != nil {
					_ = s.Close()
				}
			}
			rpcwire.WriteError(w, err)
			return
		}
	}
	merged := NewRegionMerge(srcs...)
	defer merged.Close()
	mergeStart := time.Now()
	rpcwire.ServeStream(w, r, merged, func(m *Merge[core.RegionResult]) rpcwire.StreamLine {
		reg := rpcwire.FromRegion(m.Result())
		return rpcwire.StreamLine{Region: &reg}
	})
	tr.AddSpan("merge", mergeStart, time.Since(mergeStart), "sources", strconv.Itoa(len(srcs)))
}

// handleDecodeFrames relays a whole-frame stream from the owning shard
// — the degenerate scatter (the owning set has size one), through the
// same translation so a mid-stream shard death is shard_unavailable
// here too.
func (rt *Router) handleDecodeFrames(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.DecodeFramesRequest
	if err := rpcwire.ReadJSON(r, &req); err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	ctx, cancel, err := rpcwire.RequestContext(r)
	if err != nil {
		rpcwire.WriteError(w, err)
		return
	}
	defer cancel()
	tr := obs.FromContext(r.Context())
	endRoute := tr.StartSpan("route")
	st, err := rt.owner(req.Video)
	if err != nil {
		endRoute()
		rpcwire.WriteError(w, err)
		return
	}
	t0 := time.Now()
	cur, err := st.c.DecodeFramesCursor(ctx, req.Video, req.From, req.To)
	rt.observeShard(st, t0)
	endRoute("video", req.Video, "shard", st.name)
	if err != nil {
		rpcwire.WriteError(w, rt.classify(st, err))
		return
	}
	src := &frameSource{shardStream: shardStream{rt: rt, st: st}, cur: cur}
	defer src.Close()
	mergeStart := time.Now()
	rpcwire.ServeStream(w, r, src, func(s *frameSource) rpcwire.StreamLine {
		fl := rpcwire.FromFrameResult(s.Result())
		return rpcwire.StreamLine{Frame: &fl}
	})
	tr.AddSpan("merge", mergeStart, time.Since(mergeStart), "sources", "1")
}

// ---- metrics ----

// handleMetrics exports the routing tier's registry — per-shard health
// and routed-request counters, request/TTFR/size histograms by
// endpoint, per-shard latency histograms — in the same Prometheus text
// format tasmd uses.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.metrics.reg.WriteText(w)
}
