package shard_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
	"github.com/tasm-repro/tasm/internal/shard"
)

// oneShard is a single backend tasmd-equivalent: a real store served
// by the real server handler.
type oneShard struct {
	sm *tasm.StorageManager
	ts *httptest.Server
}

// fleet is the scatter-gather test rig: three real shards, a router
// over them, a single-node reference holding the same dataset, and
// clients against both.
type fleet struct {
	shards []*oneShard
	m      *shard.Map
	rt     *shard.Router
	ts     *httptest.Server // the router's listener
	c      *client.Client   // NDJSON client against the router
	ref    *oneShard        // single node with every video, the fidelity reference
	refC   *client.Client
	videos []string
}

func startShard(t *testing.T) *oneShard {
	t.Helper()
	sm, err := tasm.Open(t.TempDir(), tasm.WithGOPLength(5), tasm.WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	ts := httptest.NewUnstartedServer(server.New(sm, server.Config{}))
	ts.Listener = smallSendBufListener{ts.Listener}
	ts.Start()
	t.Cleanup(ts.Close)
	return &oneShard{sm: sm, ts: ts}
}

// smallSendBufListener clamps the kernel send buffer of every accepted
// shard connection. The kill-mid-stream tests depend on a scatter-gather
// stream being genuinely in flight when its shard dies; with default
// buffers, loopback TCP autotunes to several megabytes and an entire
// "big" stream can park in socket buffers before the kill lands, turning
// the expected shard_unavailable into a clean end of stream.
type smallSendBufListener struct{ net.Listener }

func (l smallSendBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(8 << 10)
	}
	return c, err
}

// camSpec generates one distinguishable camera feed: the seed varies
// per video so pixel bytes differ across videos and byte-identity
// checks catch cross-video mixups.
func camSpec(name string, seed uint64) scene.Spec {
	return scene.Spec{
		Name: name, W: 192, H: 96, FPS: 10, DurationSec: 2,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.2},
		},
		Seed: seed,
	}
}

// bigCamSpec is camSpec scaled up so a scatter-gather stream carries
// megabytes per shard — enough that killing a shard mid-scan finds its
// stream genuinely in flight rather than already sitting in socket
// buffers.
func bigCamSpec(name string, seed uint64) scene.Spec {
	return scene.Spec{
		Name: name, W: 384, H: 192, FPS: 10, DurationSec: 4,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 3, SizeFrac: 0.3},
			{Class: scene.Person, Count: 1, SizeFrac: 0.25},
		},
		Seed: seed,
	}
}

// newFleet builds 3 shards + router + reference, seeding every video
// twice: through the router (exercising routed ingest and metadata)
// and directly into the reference store. Ingest is deterministic, so
// the two copies are bit-identical.
func newFleet(t *testing.T, videos ...string) *fleet {
	return newFleetSpec(t, camSpec, videos...)
}

func newFleetSpec(t *testing.T, spec func(string, uint64) scene.Spec, videos ...string) *fleet {
	t.Helper()
	f := &fleet{videos: videos, ref: startShard(t)}
	var entries []shard.MapEntry
	for i := 0; i < 3; i++ {
		s := startShard(t)
		f.shards = append(f.shards, s)
		entries = append(entries, shard.MapEntry{Name: fmt.Sprintf("s%d", i), Addr: s.ts.URL})
	}
	m, err := shard.NewMap(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.m = m
	rt, err := shard.NewRouter(m, shard.RouterConfig{HealthInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	f.rt = rt
	f.ts = httptest.NewServer(rt)
	t.Cleanup(f.ts.Close)
	if f.c, err = client.New(f.ts.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.c.Close() })
	if f.refC, err = client.New(f.ref.ts.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.refC.Close() })

	ctx := context.Background()
	for i, name := range videos {
		v, err := scene.Generate(spec(name, uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		n := v.Spec.NumFrames()
		var ds []tasm.Detection
		for fr := 0; fr < n; fr++ {
			for _, tr := range v.GroundTruth(fr) {
				ds = append(ds, tasm.Detection{Frame: fr, Label: tr.Label, Box: tr.Box})
			}
		}
		// Through the router: ingest, detections, and the index mark all
		// land on whichever shard the ring says owns the name.
		if _, err := f.c.IngestContext(ctx, name, v.Frames(0, n), v.Spec.FPS); err != nil {
			t.Fatalf("routed ingest %s: %v", name, err)
		}
		if err := f.c.AddDetectionsContext(ctx, name, ds); err != nil {
			t.Fatal(err)
		}
		if err := f.c.MarkDetectedContext(ctx, name, "car", 0, n); err != nil {
			t.Fatal(err)
		}
		// And the same data directly into the reference store.
		if _, err := f.ref.sm.Ingest(name, v.Frames(0, n), v.Spec.FPS); err != nil {
			t.Fatal(err)
		}
		if err := f.ref.sm.AddDetections(name, ds); err != nil {
			t.Fatal(err)
		}
		if err := f.ref.sm.MarkDetected(name, "car", 0, n); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// owner names the shard the ring assigns a video to.
func (f *fleet) owner(video string) int {
	name := f.m.Owner(video).Name
	var i int
	fmt.Sscanf(name, "s%d", &i)
	return i
}

func (f *fleet) multiSQL() string {
	return "SELECT car FROM " + strings.Join(f.videos, ",") + " WHERE 0 <= t < 20"
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func sameRegions(t *testing.T, label string, got, ref []tasm.RegionResult) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d regions, reference has %d", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i].Frame != ref[i].Frame || got[i].Region != ref[i].Region {
			t.Fatalf("%s region %d: (%d,%v) != reference (%d,%v)",
				label, i, got[i].Frame, got[i].Region, ref[i].Frame, ref[i].Region)
		}
		if string(got[i].Pixels.Y) != string(ref[i].Pixels.Y) ||
			string(got[i].Pixels.Cb) != string(ref[i].Pixels.Cb) ||
			string(got[i].Pixels.Cr) != string(ref[i].Pixels.Cr) {
			t.Fatalf("%s region %d: pixel bytes differ from reference", label, i)
		}
	}
}

// TestScatterGatherMatchesSingleNode is the acceptance bar: the same
// multi-video query through the router (videos spread over 3 shards)
// and against a single node holding everything yields byte-identical
// region streams, in both negotiated framings.
func TestScatterGatherMatchesSingleNode(t *testing.T) {
	f := newFleet(t, "cam0", "cam1", "cam2", "cam3")

	// The fleet must actually be spread, or the test proves nothing.
	owners := map[int]bool{}
	for _, v := range f.videos {
		owners[f.owner(v)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("ring put all videos on one shard; pick different names (owners: %v)", owners)
	}

	ref, refSt, err := f.ref.sm.ScanSQL(f.multiSQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference scan found nothing; dataset is broken")
	}

	got, gotSt, err := f.c.ScanSQLContext(context.Background(), f.multiSQL())
	if err != nil {
		t.Fatal(err)
	}
	sameRegions(t, "ndjson", got, ref)
	if gotSt.RegionsReturned != refSt.RegionsReturned {
		t.Fatalf("stats: %d regions via router, %d single-node", gotSt.RegionsReturned, refSt.RegionsReturned)
	}

	bc, err := client.New(f.ts.URL, client.WithEncoding(client.Binary))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	got2, _, err := bc.ScanSQLContext(context.Background(), f.multiSQL())
	if err != nil {
		t.Fatal(err)
	}
	sameRegions(t, "binary", got2, ref)

	// The single-video remote path through the router matches too.
	one := "SELECT car FROM cam2 WHERE 0 <= t < 20"
	refOne, _, err := f.ref.sm.ScanSQL(one)
	if err != nil {
		t.Fatal(err)
	}
	gotOne, _, err := f.c.ScanSQLContext(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	sameRegions(t, "single-video", gotOne, refOne)
}

// TestDecodeFramesThroughRouter: the relayed whole-frame stream is
// byte-identical to the single node's.
func TestDecodeFramesThroughRouter(t *testing.T) {
	f := newFleet(t, "cam0", "cam1")
	ref, _, err := f.ref.sm.DecodeFrames("cam1", 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := f.c.DecodeFramesCursor(context.Background(), "cam1", 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	i := 0
	for cur.Next() {
		r := cur.Result()
		if r.Index != 3+i || string(r.Pixels.Y) != string(ref[i].Y) {
			t.Fatalf("frame %d differs through the router", r.Index)
		}
		i++
	}
	if err := cur.Err(); err != nil || i != len(ref) {
		t.Fatalf("relayed %d frames, err %v", i, err)
	}
}

// TestShardKillMidStream is the failure half of the acceptance bar:
// SIGKILL one shard while a scatter-gather scan is in flight and the
// client sees (a) the regions already merged, then (b) exactly
// tasm.ErrShardUnavailable through the trailer — with every goroutine
// and lease on the surviving shards released.
func TestShardKillMidStream(t *testing.T) {
	f := newFleetSpec(t, bigCamSpec, "cam0", "cam1", "cam2", "cam3")
	victim := f.owner("cam0")
	sql := "SELECT car FROM " + strings.Join(f.videos, ",") + " WHERE 0 <= t < 40"

	// Warm, then baseline goroutines for the leak check.
	if _, _, err := f.c.ScanSQLContext(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cur, err := f.c.ScanSQLCursor(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	delivered := 0
	for i := 0; i < 2; i++ {
		if !cur.Next() {
			t.Fatalf("stream ended after %d regions: %v", delivered, cur.Err())
		}
		delivered++
	}

	// Kill the shard owning cam0 the hard way: drop its connections
	// (the in-flight stream dies mid-body) and stop the listener.
	f.shards[victim].ts.CloseClientConnections()
	f.shards[victim].ts.Close()

	for cur.Next() {
		delivered++
	}
	if err := cur.Err(); !errors.Is(err, tasm.ErrShardUnavailable) {
		t.Fatalf("after shard kill: err = %v, want ErrShardUnavailable", err)
	}
	if !errors.Is(cur.Err(), client.ErrShardUnavailable) {
		t.Fatal("client re-export does not match the same sentinel")
	}
	if delivered < 2 {
		t.Fatalf("only %d regions before the error; partial results were not delivered", delivered)
	}
	cur.Close()

	// Surviving shards: no stuck leases (their cursors were closed when
	// the merge tore down), no goroutine leak in the router process.
	for i, s := range f.shards {
		if i == victim {
			continue
		}
		waitFor(t, fmt.Sprintf("leases on shard %d", i), func() bool {
			rep, err := s.sm.FSCK()
			return err == nil && rep.Leases == 0
		})
	}
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}

// TestBreakerFailsFastAndFleetKeepsServing: once the prober marks the
// dead shard down, requests for its videos fail immediately with
// shard_unavailable while every other shard's videos keep serving.
func TestBreakerFailsFastAndFleetKeepsServing(t *testing.T) {
	f := newFleet(t, "cam0", "cam1", "cam2", "cam3")
	victim := f.owner("cam0")
	var survivor string
	for _, v := range f.videos {
		if f.owner(v) != victim {
			survivor = v
			break
		}
	}
	if survivor == "" {
		t.Fatal("every video on one shard; cannot test isolation")
	}

	f.shards[victim].ts.CloseClientConnections()
	f.shards[victim].ts.Close()

	// A routed request fails with shard_unavailable as soon as the dial
	// fails, before the breaker's consecutive-failure threshold is met —
	// so wait for the breaker itself (the /metrics gauge) rather than
	// the first failed request.
	down := fmt.Sprintf("tasm_router_shard_up{shard=%q} 0", fmt.Sprintf("s%d", victim))
	waitFor(t, "breaker to open", func() bool {
		if _, err := f.c.Meta("cam0"); !errors.Is(err, tasm.ErrShardUnavailable) {
			return false
		}
		res, err := http.Get(f.ts.URL + "/metrics")
		if err != nil {
			return false
		}
		b, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return strings.Contains(string(b), down)
	})

	// Fail-fast: no dials once the breaker is open.
	start := time.Now()
	if _, err := f.c.Meta("cam0"); !errors.Is(err, tasm.ErrShardUnavailable) {
		t.Fatalf("got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("breaker-open request took %v; expected fail-fast", d)
	}

	// The rest of the fleet is untouched.
	if _, err := f.c.Meta(survivor); err != nil {
		t.Fatalf("surviving shard's video failed: %v", err)
	}
	if _, _, err := f.c.ScanSQLContext(context.Background(),
		"SELECT car FROM "+survivor+" WHERE 0 <= t < 20"); err != nil {
		t.Fatalf("surviving shard's scan failed: %v", err)
	}

	// /metrics and /v1/shards agree the shard is down.
	res, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), down) {
		t.Fatalf("/metrics missing %q:\n%s", down, body)
	}
	if !strings.Contains(string(body), "tasm_router_requests_total") {
		t.Fatal("/metrics missing routed-request counters")
	}

	// Stats still answer, carrying the per-shard breakdown with the
	// dead shard annotated rather than failing the whole aggregation.
	totals, shards, err := f.c.ShardCacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("stats breakdown has %d shards", len(shards))
	}
	deadSeen := false
	for _, s := range shards {
		if s.Shard == fmt.Sprintf("s%d", victim) {
			deadSeen = true
			if s.Healthy || s.Err == "" {
				t.Fatalf("dead shard reported healthy: %+v", s)
			}
		}
	}
	if !deadSeen {
		t.Fatal("dead shard missing from breakdown")
	}
	_ = totals
}

// TestRouterUnaryAndFanout sweeps the rest of the surface through the
// router: catalog union, merged fsck, remote-sentinel passthrough, and
// the shard listing.
func TestRouterUnaryAndFanout(t *testing.T) {
	f := newFleet(t, "cam0", "cam1", "cam2")

	videos, err := f.c.Videos()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(videos, ",") != "cam0,cam1,cam2" {
		t.Fatalf("catalog union = %v", videos)
	}

	meta, bytes, labels, err := f.c.VideoInfoContext(context.Background(), "cam1")
	if err != nil || meta.Name != "cam1" || bytes == 0 || len(labels) == 0 {
		t.Fatalf("videoinfo: %+v %d %v %v", meta, bytes, labels, err)
	}

	rep, err := f.c.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Videos != 3 || len(rep.Problems) != 0 {
		t.Fatalf("merged fsck: %+v", rep)
	}
	if _, err := f.c.GC(); err != nil {
		t.Fatal(err)
	}

	// Typed errors from a healthy shard pass through with their exact
	// identity — not found is not an outage.
	if _, err := f.c.Meta("missing"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Fatalf("routed miss: %v", err)
	}
	if err := f.c.AutotilePause("x"); !errors.Is(err, tasm.ErrAutotileDisabled) {
		t.Fatalf("fanout pause on autotile-less shards: %v", err)
	}

	// The shard listing names the fleet.
	res, err := http.Get(f.ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{`"s0"`, `"s1"`, `"s2"`, `"healthy":true`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/v1/shards missing %s: %s", want, body)
		}
	}

	// Delete through the router and the catalog shrinks.
	if err := f.c.DeleteVideo("cam2"); err != nil {
		t.Fatal(err)
	}
	videos, err = f.c.Videos()
	if err != nil || len(videos) != 2 {
		t.Fatalf("catalog after delete: %v %v", videos, err)
	}
}

// TestMapReloadKeepsOwnership: swapping in a map where one shard moved
// address keeps every video on its shard (names anchor the ring) and
// requests keep working.
func TestMapReloadKeepsOwnership(t *testing.T) {
	f := newFleet(t, "cam0", "cam1")
	before := map[string]string{}
	for _, v := range f.videos {
		before[v] = f.m.Owner(v).Name
	}

	// Replace s2's address with a fresh (empty) shard. Only videos
	// owned by s2 would be affected — ownership by name is unchanged.
	spare := startShard(t)
	entries := f.m.Shards()
	entries[2].Addr = spare.ts.URL
	m2, err := shard.NewMap(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.rt.SetMap(m2); err != nil {
		t.Fatal(err)
	}
	for _, v := range f.videos {
		if m2.Owner(v).Name != before[v] {
			t.Fatalf("%s moved shards on an address-only reload", v)
		}
	}
	// The fleet still serves (cam0/cam1 are on s0/s1 in this layout or
	// the spare now owns them empty — either way the router must answer).
	for _, v := range f.videos {
		_, err := f.c.Meta(v)
		if err != nil && !errors.Is(err, tasm.ErrVideoNotFound) {
			t.Fatalf("after reload, Meta(%s): %v", v, err)
		}
	}
}
