package shard_test

// Trace continuity across the scale-out tier: one caller-chosen trace
// id must name the same request in the client cursor, the router's
// trace ring, and every shard's trace ring — including when a shard is
// killed mid-stream, which is exactly when an operator reaches for the
// timeline.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/obs"
)

type traceRecord struct {
	TraceID string            `json:"trace_id"`
	Attrs   map[string]string `json:"attrs"`
	Spans   []struct {
		Name string `json:"name"`
	} `json:"spans"`
}

func fetchTrace(c *client.Client, id string) (traceRecord, bool) {
	raw, err := c.TraceContext(context.Background(), id)
	if err != nil {
		return traceRecord{}, false
	}
	var rec traceRecord
	if json.Unmarshal(raw, &rec) != nil {
		return traceRecord{}, false
	}
	return rec, true
}

// TestRouterExpositionLinted: the router's live exposition — per-shard
// gauges, request histograms, legacy counters — passes the HELP/TYPE
// lint after real scatter-gather traffic.
func TestRouterExpositionLinted(t *testing.T) {
	f := newFleet(t, "cam0", "cam1", "cam2")
	sql := "SELECT car FROM " + strings.Join(f.videos, ",") + " WHERE 0 <= t < 20"
	if _, _, err := f.c.ScanSQLContext(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := obs.LintExposition(string(body)); err != nil {
		t.Fatalf("live exposition fails lint: %v", err)
	}
}

// TestTraceContinuityAcrossScatterGather kills one shard under a traced
// scatter-gather scan and asserts the single trace id correlates the
// whole blast radius: the client cursor, the router's record (route and
// merge spans), and the surviving shards' records.
func TestTraceContinuityAcrossScatterGather(t *testing.T) {
	f := newFleetSpec(t, bigCamSpec, "cam0", "cam1", "cam2", "cam3")
	victim := f.owner("cam0")
	sql := "SELECT car FROM " + strings.Join(f.videos, ",") + " WHERE 0 <= t < 40"

	tid := client.NewTraceID()
	ctx := client.WithTraceID(context.Background(), tid)
	cur, err := f.c.ScanSQLCursor(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 2; i++ {
		if !cur.Next() {
			t.Fatalf("stream ended early: %v", cur.Err())
		}
	}

	f.shards[victim].ts.CloseClientConnections()
	f.shards[victim].ts.Close()

	for cur.Next() {
	}
	if err := cur.Err(); !errors.Is(err, tasm.ErrShardUnavailable) {
		t.Fatalf("after shard kill: err = %v, want ErrShardUnavailable", err)
	}

	// Leg 1: the client cursor carries the id the caller chose.
	if got := cur.TraceID(); got != tid {
		t.Fatalf("cursor trace id %q, want %q", got, tid)
	}
	cur.Close()

	// Leg 2: the router's ring has the record, marked as the router
	// tier, with the scatter (route) and gather (merge) spans.
	var rtRec traceRecord
	waitFor(t, "router trace record", func() bool {
		rec, ok := fetchTrace(f.c, tid)
		rtRec = rec
		return ok
	})
	if rtRec.TraceID != tid {
		t.Fatalf("router record id %q, want %q", rtRec.TraceID, tid)
	}
	if rtRec.Attrs["tier"] != "router" {
		t.Fatalf("router record tier %q", rtRec.Attrs["tier"])
	}
	spans := map[string]bool{}
	for _, s := range rtRec.Spans {
		spans[s.Name] = true
	}
	if !spans["route"] || !spans["merge"] {
		t.Fatalf("router record missing route/merge spans; have %v", rtRec.Spans)
	}

	// Leg 3: every surviving shard that owns a queried video served its
	// cursor under the same id and indexed the request in its own ring.
	surviving := 0
	for i, s := range f.shards {
		if i == victim {
			continue
		}
		owns := false
		for _, v := range f.videos {
			if f.owner(v) == i {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}
		surviving++
		sc, err := client.New(s.ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		var shRec traceRecord
		waitFor(t, "shard trace record", func() bool {
			rec, ok := fetchTrace(sc, tid)
			shRec = rec
			return ok
		})
		if shRec.TraceID != tid {
			t.Fatalf("shard %d record id %q, want %q", i, shRec.TraceID, tid)
		}
		if got := shRec.Attrs["endpoint"]; got != "POST /v1/scan" {
			t.Fatalf("shard %d record endpoint %q", i, got)
		}
	}
	if surviving == 0 {
		t.Fatal("every video on the victim shard; cannot test continuity")
	}
}
