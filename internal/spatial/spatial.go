// Package spatial implements a grid-based spatial index over bounding
// boxes. The paper notes (§3.2) that "a spatial index could further
// accelerate queries containing conjunctive predicates by efficiently
// computing the intersection of bounding boxes before fetching tiles";
// this package is that extension. It is a static, bulk-loaded structure:
// built once per (frame, label) box set, then queried for intersections.
//
// A uniform grid fits this workload better than an R-tree: box sets are
// rebuilt per frame (cheap bulk load beats incremental balance), boxes are
// similarly sized (object detections), and the universe is the fixed frame
// rectangle.
package spatial

import (
	"github.com/tasm-repro/tasm/internal/geom"
)

// Index is a static spatial index over a fixed set of rectangles.
type Index struct {
	bounds geom.Rect
	boxes  []geom.Rect
	cols   int
	rows   int
	cellW  int
	cellH  int
	cells  [][]int32 // box indexes per cell
}

// targetPerCell balances cell scan cost against cell count.
const targetPerCell = 4

// Build bulk-loads an index over boxes within bounds. Boxes outside bounds
// are clamped; empty boxes keep their slot (so indexes returned by queries
// match the input) but are never reported.
func Build(boxes []geom.Rect, bounds geom.Rect) *Index {
	ix := &Index{bounds: bounds, boxes: boxes}
	n := len(boxes)
	if n == 0 || bounds.Empty() {
		ix.cols, ix.rows = 1, 1
		ix.cellW, ix.cellH = max(bounds.Width(), 1), max(bounds.Height(), 1)
		ix.cells = make([][]int32, 1)
		return ix
	}
	// Grid resolution: ~n/targetPerCell cells, proportioned to the bounds
	// aspect ratio, at least 1×1.
	cells := (n + targetPerCell - 1) / targetPerCell
	ix.cols, ix.rows = gridShape(cells, bounds.Width(), bounds.Height())
	ix.cellW = (bounds.Width() + ix.cols - 1) / ix.cols
	ix.cellH = (bounds.Height() + ix.rows - 1) / ix.rows
	ix.cells = make([][]int32, ix.cols*ix.rows)
	for i, b := range boxes {
		b = b.Clamp(bounds)
		if b.Empty() {
			continue
		}
		c0, r0 := ix.cellAt(b.X0, b.Y0)
		c1, r1 := ix.cellAt(b.X1-1, b.Y1-1)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				idx := r*ix.cols + c
				ix.cells[idx] = append(ix.cells[idx], int32(i))
			}
		}
	}
	return ix
}

// gridShape picks (cols, rows) with cols*rows >= cells, roughly matching
// the aspect ratio w:h.
func gridShape(cells, w, h int) (cols, rows int) {
	if cells < 1 {
		cells = 1
	}
	cols, rows = 1, 1
	for cols*rows < cells {
		// Grow the dimension that keeps cells closest to square.
		if cols*h <= rows*w {
			cols++
		} else {
			rows++
		}
	}
	return cols, rows
}

func (ix *Index) cellAt(x, y int) (c, r int) {
	c = (x - ix.bounds.X0) / ix.cellW
	r = (y - ix.bounds.Y0) / ix.cellH
	if c < 0 {
		c = 0
	} else if c >= ix.cols {
		c = ix.cols - 1
	}
	if r < 0 {
		r = 0
	} else if r >= ix.rows {
		r = ix.rows - 1
	}
	return c, r
}

// Len returns the number of indexed boxes (including empty slots).
func (ix *Index) Len() int { return len(ix.boxes) }

// Query calls fn with the index of every stored box intersecting r, in
// unspecified order, each exactly once. fn returning false stops the scan.
func (ix *Index) Query(r geom.Rect, fn func(i int) bool) {
	r = r.Clamp(ix.bounds)
	if r.Empty() || len(ix.boxes) == 0 {
		return
	}
	c0, r0 := ix.cellAt(r.X0, r.Y0)
	c1, r1 := ix.cellAt(r.X1-1, r.Y1-1)
	// Dedup across cells: a box spanning multiple cells is reported once.
	seen := map[int32]bool{}
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, bi := range ix.cells[row*ix.cols+col] {
				if seen[bi] {
					continue
				}
				seen[bi] = true
				if ix.boxes[bi].Intersects(r) {
					if !fn(int(bi)) {
						return
					}
				}
			}
		}
	}
}

// QueryAll returns the indexes of all boxes intersecting r.
func (ix *Index) QueryAll(r geom.Rect) []int {
	var out []int
	ix.Query(r, func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// IntersectSets computes all pairwise intersections between the indexed
// boxes and probe boxes: the conjunctive-predicate primitive. It returns
// the non-empty intersection rectangles. Runtime is O(|probes| · hits)
// instead of the naive O(|boxes| · |probes|).
func (ix *Index) IntersectSets(probes []geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, p := range probes {
		ix.Query(p, func(i int) bool {
			if r := ix.boxes[i].Intersect(p); !r.Empty() {
				out = append(out, r)
			}
			return true
		})
	}
	return out
}
