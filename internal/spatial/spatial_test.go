package spatial

import (
	"sort"
	"testing"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/stats"
)

func TestQueryMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(3)
	bounds := geom.R(0, 0, 640, 360)
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(60)
		boxes := randBoxes(rng, n, bounds)
		ix := Build(boxes, bounds)
		if ix.Len() != n {
			t.Fatalf("Len = %d, want %d", ix.Len(), n)
		}
		for probe := 0; probe < 20; probe++ {
			q := randBox(rng, bounds)
			got := ix.QueryAll(q)
			var want []int
			for i, b := range boxes {
				if b.Clamp(bounds).Intersects(q) {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("iter %d: got %v, want %v (q=%v)", iter, got, want, q)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("iter %d: got %v, want %v", iter, got, want)
				}
			}
		}
	}
}

func TestQueryEachReportedOnce(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	// One big box spanning many cells.
	boxes := make([]geom.Rect, 40)
	for i := range boxes {
		boxes[i] = geom.R(i, i, i+5, i+5)
	}
	boxes = append(boxes, geom.R(0, 0, 100, 100))
	ix := Build(boxes, bounds)
	counts := map[int]int{}
	ix.Query(geom.R(0, 0, 100, 100), func(i int) bool {
		counts[i]++
		return true
	})
	for i, c := range counts {
		if c != 1 {
			t.Errorf("box %d reported %d times", i, c)
		}
	}
	if len(counts) != len(boxes) {
		t.Errorf("reported %d boxes, want %d", len(counts), len(boxes))
	}
}

func TestQueryEarlyStop(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	boxes := randBoxes(stats.NewRNG(1), 30, bounds)
	ix := Build(boxes, bounds)
	calls := 0
	ix.Query(bounds, func(i int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls", calls)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	ix := Build(nil, bounds)
	if got := ix.QueryAll(bounds); got != nil {
		t.Errorf("empty index returned %v", got)
	}
	// Empty boxes occupy slots but are never reported.
	ix = Build([]geom.Rect{{}, geom.R(10, 10, 20, 20)}, bounds)
	got := ix.QueryAll(bounds)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("got %v, want [1]", got)
	}
	// Out-of-bounds query.
	if got := ix.QueryAll(geom.R(200, 200, 300, 300)); got != nil {
		t.Errorf("out-of-bounds query returned %v", got)
	}
	// Empty bounds.
	ix = Build([]geom.Rect{geom.R(0, 0, 5, 5)}, geom.Rect{})
	if got := ix.QueryAll(geom.R(0, 0, 10, 10)); got != nil {
		t.Errorf("empty-bounds index returned %v", got)
	}
}

func TestIntersectSetsMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(17)
	bounds := geom.R(0, 0, 640, 360)
	for iter := 0; iter < 30; iter++ {
		a := randBoxes(rng, rng.Intn(40), bounds)
		b := randBoxes(rng, rng.Intn(40), bounds)
		ix := Build(a, bounds)
		got := ix.IntersectSets(b)
		var want []geom.Rect
		for _, pb := range b {
			for _, ab := range a {
				if r := ab.Intersect(pb); !r.Empty() {
					want = append(want, r)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %d intersections, want %d", iter, len(got), len(want))
		}
		// Compare as multisets via canonical sort.
		sortRects(got)
		sortRects(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: intersection sets differ at %d: %v vs %v", iter, i, got[i], want[i])
			}
		}
	}
}

func TestGridShape(t *testing.T) {
	for _, tc := range []struct{ cells, w, h int }{
		{1, 100, 100}, {4, 100, 100}, {10, 200, 100}, {7, 100, 300}, {0, 50, 50},
	} {
		c, r := gridShape(tc.cells, tc.w, tc.h)
		if c < 1 || r < 1 {
			t.Errorf("gridShape(%d,%d,%d) = %dx%d", tc.cells, tc.w, tc.h, c, r)
		}
		if tc.cells > 0 && c*r < tc.cells {
			t.Errorf("gridShape(%d,...) = %d cells", tc.cells, c*r)
		}
	}
}

func randBoxes(rng *stats.RNG, n int, bounds geom.Rect) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		out[i] = randBox(rng, bounds)
	}
	return out
}

func randBox(rng *stats.RNG, bounds geom.Rect) geom.Rect {
	x := bounds.X0 + rng.Intn(bounds.Width())
	y := bounds.Y0 + rng.Intn(bounds.Height())
	w := 1 + rng.Intn(80)
	h := 1 + rng.Intn(80)
	return geom.R(x, y, min(x+w, bounds.X1), min(y+h, bounds.Y1))
}

func sortRects(rs []geom.Rect) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
}

func BenchmarkIndexedIntersections(b *testing.B) {
	rng := stats.NewRNG(5)
	bounds := geom.R(0, 0, 1920, 1080)
	boxes := randBoxes(rng, 500, bounds)
	probes := randBoxes(rng, 500, bounds)
	ix := Build(boxes, bounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.IntersectSets(probes)
	}
}

func BenchmarkNaiveIntersections(b *testing.B) {
	rng := stats.NewRNG(5)
	bounds := geom.R(0, 0, 1920, 1080)
	boxes := randBoxes(rng, 500, bounds)
	probes := randBoxes(rng, 500, bounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []geom.Rect
		for _, p := range probes {
			for _, bb := range boxes {
				if r := bb.Intersect(p); !r.Empty() {
					out = append(out, r)
				}
			}
		}
		_ = out
	}
}
