// Package stats provides the small statistical toolkit used across the
// reproduction: deterministic RNG, order statistics (median / IQR as the
// paper's plots report), a Zipf sampler for skewed workloads, and ordinary
// least squares for calibrating the decode cost model.
package stats

import (
	"math"
	"sort"
)

// RNG is a small, deterministic 64-bit PRNG (splitmix64). Experiments seed it
// explicitly so every run of the harness is reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, matching the Zipfian query-start distribution used by
// workloads 3 and 4 in the paper.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (> 0).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Quartiles holds the 25th/50th/75th percentile of a sample, the statistics
// reported in the paper's Table 2 and as error bars (IQR) on every figure.
type Quartiles struct {
	Q25, Q50, Q75 float64
}

// ComputeQuartiles returns the quartiles of xs using linear interpolation.
// It returns the zero value for an empty sample. The input is not modified.
func ComputeQuartiles(xs []float64) Quartiles {
	if len(xs) == 0 {
		return Quartiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Quartiles{
		Q25: percentileSorted(s, 0.25),
		Q50: percentileSorted(s, 0.50),
		Q75: percentileSorted(s, 0.75),
	}
}

// IQR returns Q75 - Q25.
func (q Quartiles) IQR() float64 { return q.Q75 - q.Q25 }

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return ComputeQuartiles(xs).Q50 }

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LinearFit is the result of an ordinary least squares fit y ≈ a + b·x1 + c·x2
// used to calibrate the paper's cost model C = β·P + γ·T (with intercept).
type LinearFit struct {
	Intercept float64
	Coef      []float64
	R2        float64
}

// FitLinear performs OLS of y on the columns of x via the normal equations
// with Gaussian elimination. Each x[i] must have the same length as y.
// It returns the fitted coefficients and the coefficient of determination.
func FitLinear(y []float64, xcols ...[]float64) LinearFit {
	n := len(y)
	k := len(xcols) + 1 // plus intercept
	if n == 0 {
		return LinearFit{}
	}
	for _, col := range xcols {
		if len(col) != n {
			panic("stats: FitLinear column length mismatch")
		}
	}
	// Build X^T X and X^T y.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	feature := func(row, col int) float64 {
		if col == 0 {
			return 1
		}
		return xcols[col-1][row]
	}
	for row := 0; row < n; row++ {
		for i := 0; i < k; i++ {
			fi := feature(row, i)
			xty[i] += fi * y[row]
			for j := 0; j < k; j++ {
				xtx[i][j] += fi * feature(row, j)
			}
		}
	}
	coef := solveLinearSystem(xtx, xty)
	if coef == nil {
		return LinearFit{}
	}
	// R^2.
	meanY := Mean(y)
	var ssTot, ssRes float64
	for row := 0; row < n; row++ {
		pred := coef[0]
		for j := 1; j < k; j++ {
			pred += coef[j] * feature(row, j)
		}
		ssRes += (y[row] - pred) * (y[row] - pred)
		ssTot += (y[row] - meanY) * (y[row] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: coef[0], Coef: coef[1:], R2: r2}
}

// FitLinearNoIntercept performs OLS of y on the columns of x with the
// intercept forced to zero, the form of the paper's cost model
// C = β·P + γ·T.
func FitLinearNoIntercept(y []float64, xcols ...[]float64) LinearFit {
	n := len(y)
	k := len(xcols)
	if n == 0 || k == 0 {
		return LinearFit{}
	}
	for _, col := range xcols {
		if len(col) != n {
			panic("stats: FitLinearNoIntercept column length mismatch")
		}
	}
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for row := 0; row < n; row++ {
		for i := 0; i < k; i++ {
			xty[i] += xcols[i][row] * y[row]
			for j := 0; j < k; j++ {
				xtx[i][j] += xcols[i][row] * xcols[j][row]
			}
		}
	}
	coef := solveLinearSystem(xtx, xty)
	if coef == nil {
		return LinearFit{}
	}
	meanY := Mean(y)
	var ssTot, ssRes float64
	for row := 0; row < n; row++ {
		var pred float64
		for j := 0; j < k; j++ {
			pred += coef[j] * xcols[j][row]
		}
		ssRes += (y[row] - pred) * (y[row] - pred)
		ssTot += (y[row] - meanY) * (y[row] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Coef: coef, R2: r2}
}

// Predict evaluates the fitted model at the feature vector x.
func (f LinearFit) Predict(x ...float64) float64 {
	out := f.Intercept
	for i, c := range f.Coef {
		if i < len(x) {
			out += c * x[i]
		}
	}
	return out
}

// solveLinearSystem solves A·x = b by Gaussian elimination with partial
// pivoting. Returns nil if A is singular.
func solveLinearSystem(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil
		}
		m[col], m[pivot] = m[pivot], m[col]
		for row := col + 1; row < n; row++ {
			factor := m[row][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[row][j] -= factor * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := m[row][n]
		for j := row + 1; j < n; j++ {
			sum -= m[row][j] * x[j]
		}
		x[row] = sum / m[row][row]
	}
	return x
}
