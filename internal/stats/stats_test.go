package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGUniformish(t *testing.T) {
	r := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d deviates too far from %d", i, c, n/10)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) should be much more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	// First rank should account for roughly 1/H_100 ~ 19% of mass.
	frac := float64(counts[0]) / n
	if frac < 0.12 || frac > 0.28 {
		t.Errorf("rank-0 frequency %f outside plausible Zipf range", frac)
	}
}

func TestQuartiles(t *testing.T) {
	q := ComputeQuartiles([]float64{1, 2, 3, 4, 5})
	if q.Q50 != 3 {
		t.Errorf("median = %v, want 3", q.Q50)
	}
	if q.Q25 != 2 || q.Q75 != 4 {
		t.Errorf("quartiles = %+v, want 2/4", q)
	}
	if q.IQR() != 2 {
		t.Errorf("IQR = %v, want 2", q.IQR())
	}
	if got := Median([]float64{5, 1}); got != 3 {
		t.Errorf("Median of {5,1} = %v, want 3", got)
	}
	empty := ComputeQuartiles(nil)
	if empty.Q50 != 0 {
		t.Errorf("empty quartiles = %+v, want zeros", empty)
	}
}

func TestQuartilesDoNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	ComputeQuartiles(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("ComputeQuartiles mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2*x1 + 0.5*x2, exactly.
	var y, x1, x2 []float64
	for i := 0; i < 50; i++ {
		a, b := float64(i), float64(i*i%17)
		x1 = append(x1, a)
		x2 = append(x2, b)
		y = append(y, 3+2*a+0.5*b)
	}
	fit := FitLinear(y, x1, x2)
	if math.Abs(fit.Intercept-3) > 1e-6 {
		t.Errorf("intercept = %v, want 3", fit.Intercept)
	}
	if math.Abs(fit.Coef[0]-2) > 1e-6 || math.Abs(fit.Coef[1]-0.5) > 1e-6 {
		t.Errorf("coefs = %v, want [2 0.5]", fit.Coef)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
	if got := fit.Predict(10, 4); math.Abs(got-25) > 1e-6 {
		t.Errorf("Predict(10,4) = %v, want 25", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := NewRNG(3)
	var y, x []float64
	for i := 0; i < 500; i++ {
		xi := r.Float64() * 100
		x = append(x, xi)
		y = append(y, 5+0.7*xi+r.NormFloat64()*0.5)
	}
	fit := FitLinear(y, x)
	if math.Abs(fit.Coef[0]-0.7) > 0.05 {
		t.Errorf("slope = %v, want ~0.7", fit.Coef[0])
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// Constant column makes the system singular alongside the intercept.
	y := []float64{1, 2, 3}
	c := []float64{4, 4, 4}
	fit := FitLinear(y, c)
	if fit.Coef != nil && len(fit.Coef) > 0 && !math.IsNaN(fit.Coef[0]) {
		// Singular systems return the zero LinearFit.
		if fit.Intercept != 0 || fit.Coef[0] != 0 {
			t.Errorf("expected zero fit for singular system, got %+v", fit)
		}
	}
}

// Property: the median lies within [min, max] and quartiles are ordered.
func TestQuartileOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := ComputeQuartiles(xs)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return q.Q25 >= lo && q.Q25 <= q.Q50 && q.Q50 <= q.Q75 && q.Q75 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}
