// Package tasmerr defines the storage manager's error taxonomy: the small
// set of sentinel errors every layer (tilestore, core, the public tasm
// package) wraps with %w so callers classify failures with errors.Is
// instead of matching message strings. This is the contract a network
// front end will map onto RPC status codes: each sentinel corresponds to
// one externally meaningful failure class, while the wrapping text keeps
// the operator-facing detail (video name, SOT id, frame range).
//
// The sentinels live in their own leaf package because both the physical
// layer (internal/tilestore) and the engine (internal/core) return them,
// and the public package re-exports them; any other home would cycle.
package tasmerr

import "errors"

var (
	// ErrVideoNotFound reports an operation on a video name the catalog
	// does not hold (never ingested, or deleted and not re-ingested).
	ErrVideoNotFound = errors.New("video not found")

	// ErrVideoExists reports an ingest under a name that already exists.
	ErrVideoExists = errors.New("video already exists")

	// ErrInvalidName reports a video name the store refuses: empty,
	// dot-prefixed, or containing a path separator.
	ErrInvalidName = errors.New("invalid video name")

	// ErrInvalidRange reports a frame range that is empty or inverted
	// after clamping to the video's frame count.
	ErrInvalidRange = errors.New("invalid frame range")

	// ErrSOTNotFound reports an operation addressing a SOT id the video's
	// catalog record does not contain.
	ErrSOTNotFound = errors.New("SOT not found")

	// ErrVideoDeleted reports an operation that lost a race with
	// DeleteVideo: the video (or the generation of it the caller was
	// working against) was deleted mid-operation.
	ErrVideoDeleted = errors.New("video deleted")

	// ErrRetileConflict reports a re-tile that lost a race with another
	// re-tile of the same SOT: the version the caller's snapshot pinned
	// was superseded before its commit (or acquisition) could land.
	ErrRetileConflict = errors.New("retile conflict")

	// ErrCursorClosed reports a read from a result cursor after Close.
	ErrCursorClosed = errors.New("cursor closed")

	// ErrNoFrames reports an ingest of an empty frame sequence.
	ErrNoFrames = errors.New("no frames")

	// ErrStoreLocked reports an attempt to open a storage directory whose
	// cross-process ownership lease another process holds (typically a
	// live tasmd). Opening anyway would read stale caches and corrupt the
	// owner's view of the store; the -force escape hatch exists for
	// recovery, not routine use.
	ErrStoreLocked = errors.New("store locked by another process")

	// ErrAutotileDisabled reports an autotile control operation (pause,
	// resume, kick) against a storage manager whose background re-tiler
	// was not enabled at open.
	ErrAutotileDisabled = errors.New("adaptive tiling not enabled")

	// ErrTileCorrupt reports stored bytes that failed integrity
	// verification: a tile file whose CRC32C no longer matches the
	// checksum sealed into the catalog record when it was written, or
	// one that no longer parses. The data on disk changed after commit
	// — bit rot, a torn write that survived a crash, or external
	// tampering. `tasmctl fsck -repair` quarantines the corrupt version
	// and falls back to an earlier intact one when the store still
	// holds it.
	ErrTileCorrupt = errors.New("tile corrupt")

	// ErrIngestBackpressure reports an append rejected because the
	// video's bounded commit queue is full: encode+commit of earlier
	// GOPs has not kept up with the arrival rate. The append did no
	// work and is safe to retry after backing off — the serving layer
	// maps it to 429 with a Retry-After header and the client treats
	// it as retryable, unlike the storage taxonomy's hard failures.
	ErrIngestBackpressure = errors.New("ingest backpressure")

	// ErrVideoSealed reports an append-path operation (AppendGOP,
	// SealVideo, SetRetention) against a video that is not live: a
	// batch ingest, or a live video already converted by SealVideo.
	// Sealing is one-way; the caller must re-create the video to
	// append again.
	ErrVideoSealed = errors.New("video sealed")

	// ErrShardUnavailable reports a scale-out operation that could not
	// reach the tasmd shard owning the addressed video: the shard's
	// breaker is open after consecutive health-probe or request
	// failures, or the request itself died at the transport layer
	// (connection refused/reset, mid-stream disconnect). It classifies
	// the *routing tier's* view — the shard process may be healthy but
	// unreachable — and is deliberately distinct from ErrOverloaded,
	// which a live shard returns and which is retryable; a down shard
	// needs an operator (or the router's health prober) to bring it
	// back before retrying helps.
	ErrShardUnavailable = errors.New("shard unavailable")
)
