// Package tilecache implements a byte-budgeted, sharded LRU cache of
// decoded tile GOPs. TASM's scan path repeatedly decodes the same tiles:
// object queries revisit time ranges, the adaptive policies re-scan to
// evaluate layouts, and detectors iterate over whole videos. Because the
// software codec makes decoding the dominant cost (the β·P term of the
// cost model), serving a repeated (video, SOT, tile) request from memory
// turns the second scan of a region into pure pixel assembly.
//
// Entries are keyed by (video, sotID, tileIdx, generation). The generation
// is bumped whenever a SOT is re-tiled or replaced, so a cached decode of
// an old physical layout can never satisfy a request issued after the
// layout changed — even if the decode that produced it was still in flight
// when the layout flipped (its Put lands under the stale generation, which
// no future Get asks for).
//
// Each cached value is the decoded frame prefix [0, n) of one tile stream.
// SOTs are single GOPs, so every decode starts at frame 0's keyframe; a
// cached prefix therefore serves any request for fewer or equal frames,
// and a longer decode simply replaces a shorter cached prefix.
package tilecache

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"github.com/tasm-repro/tasm/internal/frame"
)

// numShards spreads lock contention across independent LRU segments. A
// power of two keeps the shard selection a mask.
const numShards = 16

// Key identifies one decoded tile GOP.
type Key struct {
	Video string
	SOT   int
	Tile  int
	// Retiles is the SOT's re-encode counter from the catalog snapshot the
	// caller is scanning with. Including it makes an entry unreachable the
	// instant a scan observes a newer layout, even before the invalidation
	// sweep lands, so a decode of the old physical layout can never be
	// assembled under the new one.
	Retiles int
	// Gen is the invalidation generation at the time the decode started
	// (per-SOT bumps combined with a per-video epoch; see Gen). Entries
	// from older generations are unreachable and get swept on bump.
	Gen uint64
}

// Stats is a snapshot of the cache's global counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	BytesCached   int64
	Entries       int
	Budget        int64
	// Pinned counts (video, SOT) pairs currently pinned against eviction.
	Pinned int
}

type entry struct {
	key    Key
	frames []*frame.Frame
	bytes  int64
	// use is the cache-global clock reading at the entry's last touch.
	// Recency comparisons across shards need a shared ordering: the
	// per-shard lists only order entries within one shard, and shard
	// placement is randomized per process (maphash seed), so evicting by
	// shard position alone would make the cross-shard victim choice
	// depend on the seed rather than on recency.
	use uint64
	// LRU list links (per shard, most recent at head).
	prev, next *entry
}

type shard struct {
	mu    sync.Mutex
	items map[Key]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
}

// Cache is a sharded LRU over decoded tile GOPs. A nil *Cache is a valid,
// always-miss cache: every method is nil-safe, so callers can hold a nil
// cache when caching is disabled and skip the branching.
type Cache struct {
	shards [numShards]shard
	seed   maphash.Seed
	budget int64
	bytes  atomic.Int64  // global byte accounting against budget
	clock  atomic.Uint64 // global use ordering for cross-shard eviction

	genMu  sync.Mutex
	gens   map[string]map[int]uint64
	epochs map[string]uint64 // never reset, so a re-created video starts fresh

	// pinMu guards pins, the (video, SOT) pairs eviction passes over —
	// the re-tiler pins a freshly re-tiled hot SOT so the warm decode it
	// just paid for is not the next eviction victim. pinMu is a leaf
	// lock: it is taken under shard locks (isPinned during eviction) and
	// never the other way around.
	pinMu sync.Mutex
	pins  map[string]map[int]bool

	hits, misses, evictions, invalidations atomic.Int64
}

// New creates a cache with the given byte budget. A non-positive budget
// returns nil (caching disabled).
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	c := &Cache{
		seed:   maphash.MakeSeed(),
		budget: budget,
		gens:   map[string]map[int]uint64{},
		epochs: map[string]uint64{},
		pins:   map[string]map[int]bool{},
	}
	for i := range c.shards {
		c.shards[i].items = map[Key]*entry{}
	}
	return c
}

// shardFor hashes the tile's identity (video, sot, tile) but not its
// generation fields, so a re-decode after invalidation lands in the same
// shard as its predecessor and the replaced entry's budget is reclaimed
// there first. Note that a SOT's tiles still spread across shards, which
// is why sweep() must visit every shard.
func (c *Cache) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.Video)
	h.WriteByte(0)
	writeInt(&h, uint64(k.SOT))
	writeInt(&h, uint64(k.Tile))
	return &c.shards[h.Sum64()&(numShards-1)]
}

func writeInt(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// Gen returns the current generation for (video, sot): the video's delete
// epoch in the high bits and the SOT's invalidation counter in the low
// bits. Capture it before reading the tile from disk so a concurrent
// re-tile or delete invalidates the in-flight decode rather than letting
// it poison the cache.
func (c *Cache) Gen(video string, sot int) uint64 {
	if c == nil {
		return 0
	}
	c.genMu.Lock()
	defer c.genMu.Unlock()
	return c.epochs[video]<<32 | c.gens[video][sot]&0xffffffff
}

// Get returns the first n decoded frames of the keyed tile if a prefix of
// at least that length is cached. The returned frames are shared and must
// be treated as immutable.
func (c *Cache) Get(k Key, n int) ([]*frame.Frame, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if ok && len(e.frames) >= n {
		e.use = c.clock.Add(1)
		s.moveToFront(e)
		frames := e.frames[:n:n]
		s.mu.Unlock()
		c.hits.Add(1)
		return frames, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put stores the decoded prefix for a key, replacing any shorter cached
// prefix, and returns how many entries were evicted to fit it. Only a
// value larger than the entire cache budget is rejected; a value that
// dominates its own shard evicts LRU tails from other shards instead of
// being dropped.
func (c *Cache) Put(k Key, frames []*frame.Frame) (evicted int) {
	if c == nil || len(frames) == 0 {
		return 0
	}
	var bytes int64
	for _, f := range frames {
		bytes += frameBytes(f)
	}
	if bytes > c.budget {
		return 0
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		if len(e.frames) >= len(frames) {
			e.use = c.clock.Add(1)
			s.moveToFront(e)
			s.mu.Unlock()
			return 0
		}
		c.bytes.Add(bytes - e.bytes)
		e.frames, e.bytes = frames, bytes
		e.use = c.clock.Add(1)
		s.moveToFront(e)
	} else {
		e = &entry{key: k, frames: frames, bytes: bytes, use: c.clock.Add(1)}
		s.items[k] = e
		c.bytes.Add(bytes)
		s.pushFront(e)
	}
	// Evict from this shard first (its lock is already held), never the
	// entry just inserted and passing over pinned SOTs' entries.
	evicted += c.evictShardLocked(s, k, true)
	s.mu.Unlock()
	if c.bytes.Load() > c.budget {
		evicted += c.evictAcrossShards(k, true)
	}
	// If pins alone hold the cache over budget, evict pinned entries
	// rather than letting the cache grow without bound: a pin is a
	// priority, not a leak.
	if c.bytes.Load() > c.budget {
		evicted += c.evictAcrossShards(k, false)
	}
	c.evictions.Add(int64(evicted))
	return evicted
}

// evictShardLocked drops entries from the shard's LRU tail (skipping keep
// and, when skipPinned, pinned SOTs) until the cache is within budget or
// the shard has no victim left. The shard lock must be held.
func (c *Cache) evictShardLocked(s *shard, keep Key, skipPinned bool) (evicted int) {
	e := s.tail
	for c.bytes.Load() > c.budget && e != nil {
		prev := e.prev
		if e.key != keep && !(skipPinned && c.isPinned(e.key)) {
			c.bytes.Add(-e.bytes)
			s.remove(e)
			evicted++
		}
		e = prev
	}
	return evicted
}

// evictAcrossShards drops the globally least-recently-used eligible entry
// (sparing keep, and pinned SOTs when skipPinned) until the cache is
// within budget or no victim remains. Each round scans every shard's tail
// region for its oldest eligible entry, picks the one with the smallest
// use-clock reading, then re-locks that shard to evict. Locks are taken
// one shard at a time, so concurrent Puts may interleave; the re-locked
// eviction is best-effort — it takes the shard's current oldest eligible
// entry, which a race may have changed — and the loop terminates once a
// round finds no victim anywhere.
func (c *Cache) evictAcrossShards(keep Key, skipPinned bool) (evicted int) {
	eligible := func(e *entry) bool {
		return e.key != keep && !(skipPinned && c.isPinned(e.key))
	}
	for c.bytes.Load() > c.budget {
		victimShard := -1
		var victimUse uint64
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			for e := s.tail; e != nil; e = e.prev {
				if eligible(e) {
					if victimShard < 0 || e.use < victimUse {
						victimShard, victimUse = i, e.use
					}
					break
				}
			}
			s.mu.Unlock()
		}
		if victimShard < 0 {
			return evicted
		}
		s := &c.shards[victimShard]
		s.mu.Lock()
		for e := s.tail; e != nil; e = e.prev {
			if eligible(e) {
				c.bytes.Add(-e.bytes)
				s.remove(e)
				evicted++
				break
			}
		}
		s.mu.Unlock()
	}
	return evicted
}

// Pin marks (video, sot) as eviction-protected: its cached decodes are
// passed over by LRU eviction (unless pins alone exceed the budget). The
// re-tiler pins the hot SOT it just re-tiled and warmed; callers are
// expected to keep the pinned set small and Unpin as interest moves on.
func (c *Cache) Pin(video string, sot int) {
	if c == nil {
		return
	}
	c.pinMu.Lock()
	m := c.pins[video]
	if m == nil {
		m = map[int]bool{}
		c.pins[video] = m
	}
	m[sot] = true
	c.pinMu.Unlock()
}

// Unpin removes the eviction protection of (video, sot).
func (c *Cache) Unpin(video string, sot int) {
	if c == nil {
		return
	}
	c.pinMu.Lock()
	if m := c.pins[video]; m != nil {
		delete(m, sot)
		if len(m) == 0 {
			delete(c.pins, video)
		}
	}
	c.pinMu.Unlock()
}

func (c *Cache) isPinned(k Key) bool {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	return c.pins[k.Video][k.SOT]
}

// InvalidateSOT bumps the SOT's generation and frees every cached entry
// for it (any generation). Decodes of the old layout that are still in
// flight will Put under the old generation and stay unreachable.
func (c *Cache) InvalidateSOT(video string, sot int) {
	if c == nil {
		return
	}
	c.genMu.Lock()
	m := c.gens[video]
	if m == nil {
		m = map[int]uint64{}
		c.gens[video] = m
	}
	m[sot]++
	c.genMu.Unlock()
	c.sweep(func(k Key) bool { return k.Video == video && k.SOT == sot })
}

// InvalidateVideo drops every cached entry for a video and advances its
// epoch (e.g. after DeleteVideo). The epoch is monotonic, so a video later
// re-created under the same name can never hit an in-flight decode of the
// deleted one.
func (c *Cache) InvalidateVideo(video string) {
	if c == nil {
		return
	}
	c.genMu.Lock()
	c.epochs[video]++
	delete(c.gens, video)
	c.genMu.Unlock()
	c.pinMu.Lock()
	delete(c.pins, video)
	c.pinMu.Unlock()
	c.sweep(func(k Key) bool { return k.Video == video })
}

func (c *Cache) sweep(match func(Key) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.items {
			if match(k) {
				c.bytes.Add(-e.bytes)
				s.remove(e)
				c.invalidations.Add(1)
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the global counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		BytesCached:   c.bytes.Load(),
		Budget:        c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		s.mu.Unlock()
	}
	c.pinMu.Lock()
	for _, m := range c.pins {
		st.Pinned += len(m)
	}
	c.pinMu.Unlock()
	return st
}

// frameBytes is the memory footprint of one decoded 4:2:0 frame.
func frameBytes(f *frame.Frame) int64 {
	return int64(len(f.Y) + len(f.Cb) + len(f.Cr))
}

// --- intrusive LRU list (shard lock held) ---

func (s *shard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// remove unlinks and deletes an entry; the caller adjusts the cache-level
// byte counter.
func (s *shard) remove(e *entry) {
	s.unlink(e)
	delete(s.items, e.key)
}
