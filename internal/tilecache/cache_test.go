package tilecache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
)

// mkFrames builds n distinct tiny frames (16x16 = 384 bytes each).
func mkFrames(n int, fill byte) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		f := frame.New(16, 16)
		f.Fill(fill+byte(i), 128, 128)
		out[i] = f
	}
	return out
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c2 := New(0); c2 != nil {
		t.Fatal("New(0) should return nil")
	}
	if _, ok := c.Get(Key{Video: "v"}, 1); ok {
		t.Fatal("nil cache hit")
	}
	if ev := c.Put(Key{Video: "v"}, mkFrames(1, 0)); ev != 0 {
		t.Fatal("nil cache evicted")
	}
	if g := c.Gen("v", 0); g != 0 {
		t.Fatal("nil cache gen")
	}
	c.InvalidateSOT("v", 0)
	c.InvalidateVideo("v")
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

func TestPrefixSemantics(t *testing.T) {
	c := New(1 << 20)
	k := Key{Video: "v", SOT: 0, Tile: 0}
	c.Put(k, mkFrames(5, 10))

	if _, ok := c.Get(k, 6); ok {
		t.Fatal("hit on longer prefix than cached")
	}
	got, ok := c.Get(k, 3)
	if !ok || len(got) != 3 {
		t.Fatalf("Get(3) = %d frames, ok=%v", len(got), ok)
	}
	if got[2].Y[0] != 12 {
		t.Fatalf("wrong frame content %d", got[2].Y[0])
	}

	// A longer decode replaces the cached prefix; a shorter one does not.
	c.Put(k, mkFrames(8, 20))
	got, _ = c.Get(k, 8)
	if len(got) != 8 || got[0].Y[0] != 20 {
		t.Fatal("longer prefix did not replace")
	}
	c.Put(k, mkFrames(2, 90))
	got, ok = c.Get(k, 8)
	if !ok || got[0].Y[0] != 20 {
		t.Fatal("shorter Put clobbered longer prefix")
	}
}

func TestGenerationIsolation(t *testing.T) {
	c := New(1 << 20)
	k0 := Key{Video: "v", SOT: 3, Tile: 1, Gen: c.Gen("v", 3)}
	c.Put(k0, mkFrames(4, 1))

	c.InvalidateSOT("v", 3)
	if g := c.Gen("v", 3); g != 1 {
		t.Fatalf("gen after bump = %d", g)
	}
	if _, ok := c.Get(Key{Video: "v", SOT: 3, Tile: 1, Gen: c.Gen("v", 3)}, 1); ok {
		t.Fatal("new-generation Get hit an old entry")
	}
	// A decode that started before the bump lands under the stale
	// generation and stays unreachable.
	c.Put(k0, mkFrames(4, 2))
	if _, ok := c.Get(Key{Video: "v", SOT: 3, Tile: 1, Gen: 1}, 1); ok {
		t.Fatal("stale-generation Put served to new generation")
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestVideoEpochIsMonotonic(t *testing.T) {
	c := New(1 << 20)
	g0 := c.Gen("v", 0)
	kOld := Key{Video: "v", SOT: 0, Gen: g0}
	c.InvalidateVideo("v") // video deleted
	g1 := c.Gen("v", 0)
	if g1 == g0 {
		t.Fatal("epoch did not advance on InvalidateVideo")
	}
	// An in-flight decode of the deleted video lands under the old epoch
	// and must not be served to a re-created video of the same name.
	c.Put(kOld, mkFrames(1, 7))
	if _, ok := c.Get(Key{Video: "v", SOT: 0, Gen: g1}, 1); ok {
		t.Fatal("stale-epoch entry served to re-created video")
	}
}

func TestRetilesInKey(t *testing.T) {
	c := New(1 << 20)
	g := c.Gen("v", 0)
	c.Put(Key{Video: "v", SOT: 0, Tile: 0, Retiles: 0, Gen: g}, mkFrames(2, 1))
	// A scan holding a catalog snapshot with a newer layout misses even
	// before any invalidation sweep runs.
	if _, ok := c.Get(Key{Video: "v", SOT: 0, Tile: 0, Retiles: 1, Gen: g}, 1); ok {
		t.Fatal("entry crossed a layout swap")
	}
}

func TestInvalidateVideo(t *testing.T) {
	c := New(1 << 20)
	for sot := 0; sot < 4; sot++ {
		c.Put(Key{Video: "a", SOT: sot}, mkFrames(1, 0))
		c.Put(Key{Video: "b", SOT: sot}, mkFrames(1, 0))
	}
	c.InvalidateVideo("a")
	for sot := 0; sot < 4; sot++ {
		if _, ok := c.Get(Key{Video: "a", SOT: sot}, 1); ok {
			t.Fatal("deleted video still cached")
		}
		if _, ok := c.Get(Key{Video: "b", SOT: sot}, 1); !ok {
			t.Fatal("unrelated video was swept")
		}
	}
}

func TestBudgetEviction(t *testing.T) {
	// Budget holds ~33 one-frame entries (384 bytes per 16x16 frame);
	// inserting 200 must evict and stay within budget.
	c := New(numShards * 800)
	for i := 0; i < 200; i++ {
		c.Put(Key{Video: "v", SOT: i}, mkFrames(1, byte(i)))
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.BytesCached > c.budget {
		t.Fatalf("cache over budget: %d > %d", st.BytesCached, c.budget)
	}
	// Only an entry larger than the whole budget is rejected.
	c2 := New(5 * 384)
	c2.Put(Key{Video: "v", SOT: 0}, mkFrames(6, 0))
	if st := c2.Stats(); st.Entries != 0 {
		t.Fatal("entry above total budget was cached")
	}
	// An entry bigger than budget/numShards but under the total budget is
	// cached, evicting whatever else is resident (across shards).
	c2.Put(Key{Video: "v", SOT: 1}, mkFrames(1, 0))
	c2.Put(Key{Video: "v", SOT: 2}, mkFrames(1, 0))
	c2.Put(Key{Video: "v", SOT: 3}, mkFrames(4, 9))
	if _, ok := c2.Get(Key{Video: "v", SOT: 3}, 4); !ok {
		t.Fatal("shard-dominating entry was not cached")
	}
	if st := c2.Stats(); st.BytesCached > 5*384 {
		t.Fatalf("over budget after dominant insert: %d", st.BytesCached)
	}
}

func TestLRUOrder(t *testing.T) {
	// Verify that touching an entry protects it: fill one shard to the
	// whole budget, refresh the first key, then overflow and check the
	// untouched key went first.
	c := New(3 * 384) // exactly three one-frame entries
	k := func(i int) Key { return Key{Video: "v", SOT: 0, Tile: i} }
	// Find four keys in the same shard so eviction order is pure LRU.
	s0 := c.shardFor(k(0))
	same := []Key{k(0)}
	for i := 1; len(same) < 4 && i < 10000; i++ {
		if c.shardFor(k(i)) == s0 {
			same = append(same, k(i))
		}
	}
	if len(same) < 4 {
		t.Skip("could not find colliding keys")
	}
	c.Put(same[0], mkFrames(1, 0))
	c.Put(same[1], mkFrames(1, 0))
	c.Put(same[2], mkFrames(1, 0))
	c.Get(same[0], 1) // refresh LRU position of same[0]
	c.Put(same[3], mkFrames(1, 0))
	if _, ok := c.Get(same[0], 1); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(same[1], 1); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				video, sot := fmt.Sprintf("v%d", i%3), i%17
				k := Key{Video: video, SOT: sot, Tile: w % 2, Gen: c.Gen(video, sot)}
				if _, ok := c.Get(k, 2); !ok {
					c.Put(k, mkFrames(2, byte(i)))
				}
				if i%50 == 0 {
					c.InvalidateSOT(k.Video, k.SOT)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesCached > c.budget {
		t.Fatalf("over budget after concurrent churn: %d", st.BytesCached)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(1 << 20)
	k := Key{Video: "v"}
	c.Get(k, 1)
	c.Put(k, mkFrames(2, 0))
	c.Get(k, 1)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.BytesCached != 2*384 {
		t.Fatalf("entries=%d bytes=%d", st.Entries, st.BytesCached)
	}
}
