package tilecache

import "testing"

// 16x16 frames are 384 bytes each; a 4-frame entry is 1536 bytes.
const entryBytes = 4 * 384

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := New(3 * entryBytes)
	kPinned := Key{Video: "v", SOT: 0, Tile: 0}
	c.Put(kPinned, mkFrames(4, 0))
	c.Pin("v", 0)

	// Fill past the budget: the pinned entry is LRU but must be spared.
	for sot := 1; sot <= 5; sot++ {
		c.Put(Key{Video: "v", SOT: sot, Tile: 0}, mkFrames(4, byte(sot)))
	}
	if _, ok := c.Get(kPinned, 4); !ok {
		t.Fatal("pinned entry was evicted")
	}
	if st := c.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", st.Pinned)
	}
	if st := c.Stats(); st.BytesCached > st.Budget {
		t.Fatalf("cache over budget: %d > %d", st.BytesCached, st.Budget)
	}

	// Unpinned, the same access pattern evicts it.
	c.Unpin("v", 0)
	if st := c.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after Unpin, want 0", st.Pinned)
	}
	for sot := 6; sot <= 10; sot++ {
		c.Put(Key{Video: "v", SOT: sot, Tile: 0}, mkFrames(4, byte(sot)))
	}
	if _, ok := c.Get(kPinned, 4); ok {
		t.Fatal("unpinned LRU entry survived eviction pressure")
	}
}

func TestAllPinnedStillBoundsBudget(t *testing.T) {
	// Pins are priorities, not leaks: when pinned entries alone exceed the
	// budget, eviction falls back to evicting pinned entries too.
	c := New(2 * entryBytes)
	for sot := 0; sot < 5; sot++ {
		c.Pin("v", sot)
		c.Put(Key{Video: "v", SOT: sot, Tile: 0}, mkFrames(4, byte(sot)))
	}
	if st := c.Stats(); st.BytesCached > st.Budget {
		t.Fatalf("all-pinned cache over budget: %d > %d", st.BytesCached, st.Budget)
	}
}

func TestInvalidateVideoDropsPins(t *testing.T) {
	c := New(1 << 20)
	c.Pin("v", 0)
	c.Pin("w", 3)
	c.InvalidateVideo("v")
	if st := c.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d after InvalidateVideo, want 1 (w/3)", st.Pinned)
	}
	// Pin/Unpin on a nil cache are no-ops.
	var nc *Cache
	nc.Pin("v", 0)
	nc.Unpin("v", 0)
}
