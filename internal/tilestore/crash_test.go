package tilestore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/fsio"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

// memStore opens a store on a fresh fault-injectable in-memory
// filesystem. The store is rooted at the MemFS root, which is durable
// by construction — it models the pre-existing mount point a real
// store directory lives on.
func memStore(t *testing.T) (*Store, *fsio.MemFS) {
	t.Helper()
	fs := fsio.NewMemFS()
	s, err := Open("/", WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func crashParams() vcodec.Params {
	p := vcodec.DefaultParams()
	p.GOPLength = 4
	return p
}

// encodeSOT encodes n small frames under the given layout, for cheap
// schedules in the exhaustive crashpoint sweep.
func encodeSOT(t *testing.T, w, h, n, shift int, l layout.Layout) []*container.Video {
	t.Helper()
	tiles, err := container.EncodeTiled(makeFrames(w, h, n, shift), l, 10, crashParams())
	if err != nil {
		t.Fatal(err)
	}
	return tiles
}

// storeState captures the complete committed, readable state of a
// store: every video's SOT lineup (id, version, layout size) and a
// checksum of every tile's bytes. Two states are equal iff every
// committed frame reads back byte-identical.
func storeState(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	names, err := s.ListVideos()
	if err != nil {
		t.Fatalf("ListVideos: %v", err)
	}
	for _, name := range names {
		meta, err := s.Meta(name)
		if err != nil {
			t.Fatalf("Meta(%s): %v", name, err)
		}
		// The lifecycle flags are part of the committed state: a seal or
		// trim changes them without necessarily changing the SOT lineup.
		out[name+"/meta"] = fmt.Sprintf("live=%v sealed=%v frames=%d trimmed=%d",
			meta.Live, meta.Sealed, meta.FrameCount, meta.TrimmedTo)
		for _, sot := range meta.SOTs {
			key := fmt.Sprintf("%s/sot%d.r%d.t%d", name, sot.ID, sot.Retiles, sot.L.NumTiles())
			sum := crc32.NewIEEE()
			for i := 0; i < sot.L.NumTiles(); i++ {
				tv, err := s.ReadTile(name, sot, i)
				if err != nil {
					t.Fatalf("ReadTile(%s, %d, %d): %v", name, sot.ID, i, err)
				}
				sum.Write(tv.Bytes())
			}
			out[key] = fmt.Sprintf("%08x", sum.Sum32())
		}
	}
	return out
}

// TestPowerCutEveryCrashpoint is the power-cut property test: an
// ingest → retile → ingest → delete → retile schedule, followed by a
// live video's whole life (create → append ×3 → retention trim →
// seal), is crashed at every mutating filesystem operation index, the
// store reopened (running its recovery sweep), and the surviving state
// must be FSCK-clean and byte-identical to the state after the last
// schedule step whose commit landed — never a torn hybrid. For the
// append steps in particular this is the live-ingest crash guarantee:
// a cut mid-append leaves the previously committed SOT prefix intact.
func TestPowerCutEveryCrashpoint(t *testing.T) {
	w, h := 64, 48
	single := layout.Single(w, h)
	l12, err := layout.Uniform(1, 2, cons(w, h))
	if err != nil {
		t.Fatal(err)
	}
	metaA := VideoMeta{
		Name: "a", W: w, H: h, FPS: 10, GOPLength: 4, FrameCount: 16,
		SOTs: []SOTMeta{
			{ID: 0, From: 0, To: 8, L: single},
			{ID: 1, From: 8, To: 16, L: l12},
		},
	}
	metaB := VideoMeta{
		Name: "b", W: w, H: h, FPS: 10, GOPLength: 4, FrameCount: 8,
		SOTs: []SOTMeta{{ID: 0, From: 0, To: 8, L: single}},
	}
	a0 := encodeSOT(t, w, h, 8, 0, single)
	a1 := encodeSOT(t, w, h, 8, 30, l12)
	a0r := encodeSOT(t, w, h, 8, 0, l12)
	b0 := encodeSOT(t, w, h, 8, 50, single)
	b0r := encodeSOT(t, w, h, 8, 50, l12)

	// A live video's whole life rides the same schedule: with GOP 4 and
	// MaxAgeFrames 4, the third append leaves SOTs 0 and 1 expired, so
	// the trim step removes both before the seal.
	liveMeta := VideoMeta{
		Name: "cam", W: w, H: h, FPS: 10, GOPLength: 4,
		Retention: &RetentionPolicy{MaxAgeFrames: 4},
	}
	c0 := encodeSOT(t, w, h, 4, 70, single)
	c1 := encodeSOT(t, w, h, 4, 80, single)
	c2 := encodeSOT(t, w, h, 4, 90, single)
	appendC := func(tiles []*container.Video) func(s *Store) error {
		return func(s *Store) error {
			_, err := s.AppendSOT("cam", single, tiles)
			return err
		}
	}

	steps := []func(s *Store) error{
		func(s *Store) error { return s.CreateVideo(metaA, [][]*container.Video{a0, a1}) },
		func(s *Store) error { return s.ReplaceSOT("a", 0, l12, a0r) },
		func(s *Store) error { return s.CreateVideo(metaB, [][]*container.Video{b0}) },
		func(s *Store) error { return s.DeleteVideo("a") },
		func(s *Store) error { return s.ReplaceSOT("b", 0, l12, b0r) },
		func(s *Store) error { return s.CreateLiveVideo(liveMeta) },
		appendC(c0),
		appendC(c1),
		appendC(c2),
		func(s *Store) error {
			_, err := s.TrimExpired("cam")
			return err
		},
		func(s *Store) error { return s.SealVideo("cam") },
	}

	// Reference run: record the op count and the committed state after
	// every step.
	ref := fsio.NewMemFS()
	s, err := Open("/", WithFS(ref))
	if err != nil {
		t.Fatal(err)
	}
	states := []map[string]string{storeState(t, s)}
	for i, step := range steps {
		if err := step(s); err != nil {
			t.Fatalf("reference run step %d: %v", i, err)
		}
		states = append(states, storeState(t, s))
	}
	n := ref.Ops()
	if n < len(steps) {
		t.Fatalf("schedule performed only %d mutations", n)
	}
	t.Logf("schedule: %d steps, %d crashpoints", len(steps), n)

	for k := 1; k <= n; k++ {
		fs := fsio.NewMemFS()
		fs.CrashAt(k)
		completed := 0
		s, err := Open("/", WithFS(fs))
		if err == nil {
			for _, step := range steps {
				if step(s) != nil {
					break
				}
				completed++
			}
		}
		// A crash in a best-effort cleanup op (retiring a superseded
		// version, say) is invisible to the schedule — every step can
		// complete; the recovered state must then match the final one.

		// Power back on: recover the durable state and reopen.
		fs.Recover()
		s2, err := Open("/", WithFS(fs))
		if err != nil {
			t.Fatalf("crashpoint %d: reopen: %v", k, err)
		}
		rep, err := s2.FSCK()
		if err != nil {
			t.Fatalf("crashpoint %d: fsck: %v", k, err)
		}
		if !rep.OK() {
			t.Errorf("crashpoint %d: store not FSCK-clean after recovery: %v", k, rep.Problems)
			continue
		}
		got := storeState(t, s2)
		ok := reflect.DeepEqual(got, states[completed])
		if !ok && completed+1 < len(states) {
			// The in-flight step's commit may have landed just before
			// the cut; all-or-nothing is the property under test.
			ok = reflect.DeepEqual(got, states[completed+1])
		}
		if !ok {
			t.Errorf("crashpoint %d (after step %d): recovered state %v,\nwant %v\nor   %v",
				k, completed, got, states[completed], states[completed+1])
		}
	}
}

// A flipped bit in a committed tile file is detected at decode as
// tasmerr.ErrTileCorrupt — on the real filesystem, exactly as served.
func TestCorruptTileDetected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v")
	meta, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.SOTs[1].TileCRCs) != 4 {
		t.Fatalf("manifest carries %d tile CRCs, want 4", len(meta.SOTs[1].TileCRCs))
	}
	path := filepath.Join(s.Root(), "v", "frames_10-19", "tile2.tsv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.ReadTile("v", meta.SOTs[1], 2); !errors.Is(err, tasmerr.ErrTileCorrupt) {
		t.Errorf("ReadTile on flipped bit = %v, want ErrTileCorrupt", err)
	}
	if _, err := s.ReadTile("v", meta.SOTs[1], 1); err != nil {
		t.Errorf("intact sibling tile: %v", err)
	}
	rep, err := s.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("FSCK clean despite corrupt tile")
	}
	if m := s.Metrics(); m.CorruptTiles == 0 {
		t.Error("corrupt-tile counter not bumped")
	}

	// The same read through a snapshot lease fails identically.
	meta2, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if _, err := lease.ReadTile(meta2.SOTs[1], 2); !errors.Is(err, tasmerr.ErrTileCorrupt) {
		t.Errorf("leased ReadTile = %v, want ErrTileCorrupt", err)
	}
}

// Repair quarantines a corrupt version and falls back to the previous
// MVCC version when one still exists on disk.
func TestRepairFallsBackToPreviousVersion(t *testing.T) {
	s, fs := memStore(t)
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H

	// Pin version 0 of SOT 0 so the re-tile below retires it without
	// reaping: the previous version stays on disk.
	_, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	newTiles, err := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceSOT("v", 0, l22, newTiles); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the live version's tile.
	path := filepath.Join(s.Root(), "v", "frames_0-9.r1", "tile0.tsv")
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := fs.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0], trashDirName) {
		t.Errorf("Quarantined = %v, want one path under .trash", rep.Quarantined)
	}
	if len(rep.Reverted) != 1 || !strings.Contains(rep.Reverted[0], "frames_0-9") {
		t.Errorf("Reverted = %v", rep.Reverted)
	}
	if len(rep.Videos) != 1 || rep.Videos[0] != "v" {
		t.Errorf("Videos = %v", rep.Videos)
	}

	got, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.SOTs[0].Retiles != 0 || !got.SOTs[0].L.Equal(layout.Single(w, h)) {
		t.Errorf("manifest not reverted: retiles=%d layout=%dx%d tiles", got.SOTs[0].Retiles, got.SOTs[0].L.Rows(), got.SOTs[0].L.Cols())
	}
	if _, err := s.ReadTile("v", got.SOTs[0], 0); err != nil {
		t.Errorf("reverted version unreadable: %v", err)
	}
	if fr, err := s.FSCK(); err != nil || !fr.OK() {
		t.Errorf("FSCK after repair: %v %v", fr.Problems, err)
	}

	// Releasing the old lease must not reap the re-adopted version.
	lease.Release()
	if _, err := s.ReadTile("v", got.SOTs[0], 0); err != nil {
		t.Errorf("adopted version reaped by lease release: %v", err)
	}
}

// Without an intact earlier version, Repair still quarantines the
// corrupt directory but leaves the catalog record pointing at it, so
// FSCK keeps reporting the loss instead of silently erasing it.
func TestRepairQuarantineWithoutFallback(t *testing.T) {
	s, fs := memStore(t)
	buildVideo(t, s, "v")
	path := filepath.Join(s.Root(), "v", "frames_0-9", "tile0.tsv")
	data, _ := fs.ReadFile(path)
	data[len(data)/2] ^= 0x01
	fs.WriteFile(path, data, 0o644)

	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || len(rep.Reverted) != 0 {
		t.Errorf("report = %+v, want one quarantine, no revert", rep)
	}
	if fr, _ := s.FSCK(); fr.OK() {
		t.Error("FSCK clean despite unrepairable SOT")
	}
	if _, err := s.ReadTile("v", SOTMeta{ID: 0, From: 0, To: 10, L: layout.Single(128, 96)}, 0); err == nil {
		t.Error("quarantined version still readable in place")
	}
}

// A failed tombstone rename during DeleteVideo rolls the video back to
// fully live, and the error is surfaced; a failed rollback is reported
// too instead of being silently swallowed.
func TestDeleteRollbackSurfacesErrors(t *testing.T) {
	s, fs := memStore(t)
	buildVideo(t, s, "v")
	_, lease, err := s.Snapshot("v") // pins both SOT dirs → two tombstone moves
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	// Ops during DeleteVideo with two leased dirs:
	// 1 MkdirAll, 2 Rename, 3 MkdirAll, 4 Rename, then rollback Rename.
	fs.FailOp(4, nil)
	if err := s.DeleteVideo("v"); err == nil {
		t.Fatal("DeleteVideo succeeded despite failed tombstone rename")
	} else if strings.Contains(err.Error(), "rollback failed") {
		t.Errorf("rollback should have succeeded: %v", err)
	}
	// Rolled back: the video is fully live and consistent.
	if _, err := s.Meta("v"); err != nil {
		t.Errorf("video not live after rollback: %v", err)
	}
	if fr, _ := s.FSCK(); !fr.OK() {
		t.Errorf("FSCK after rollback: %v", fr.Problems)
	}

	// Now fail the second tombstone rename AND the rollback of the
	// first: the error must say the rollback failed and where the
	// stranded files are.
	fs.FailOp(4, nil)
	fs.FailOp(5, nil)
	err = s.DeleteVideo("v")
	if err == nil || !strings.Contains(err.Error(), "rollback failed") {
		t.Fatalf("DeleteVideo = %v, want surfaced rollback failure", err)
	}
	if !strings.Contains(err.Error(), trashDirName) {
		t.Errorf("error does not locate stranded tombstones: %v", err)
	}
}

// FSCK and GC on damaged stores, exercised through the fault-injection
// filesystem: a deleted manifest, a dangling version directory, and
// lease-pinned tombstones in .trash.
func TestFsckGCRepairPathsUnderFaultFS(t *testing.T) {
	t.Run("missing-manifest", func(t *testing.T) {
		s, fs := memStore(t)
		buildVideo(t, s, "v")
		if err := fs.Remove(filepath.Join(s.Root(), "v", "manifest.json")); err != nil {
			t.Fatal(err)
		}
		rep, err := s.FSCK()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() || len(rep.Orphans) == 0 {
			t.Errorf("FSCK = problems %v orphans %v; want orphaned video dir", rep.Problems, rep.Orphans)
		}
		gc, err := s.GC()
		if err != nil {
			t.Fatal(err)
		}
		if len(gc.Removed) == 0 {
			t.Error("GC removed nothing")
		}
		if _, err := fs.Stat(filepath.Join(s.Root(), "v")); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("manifest-less video dir survived GC: %v", err)
		}
	})

	t.Run("dangling-version-dir", func(t *testing.T) {
		s, fs := memStore(t)
		buildVideo(t, s, "v")
		dangling := filepath.Join(s.Root(), "v", "frames_0-9.r7")
		if err := fs.MkdirAll(dangling, 0o755); err != nil {
			t.Fatal(err)
		}
		rep, _ := s.FSCK()
		if !rep.OK() {
			t.Errorf("dangling version dir should be an orphan, not a problem: %v", rep.Problems)
		}
		found := false
		for _, o := range rep.Orphans {
			if o == dangling {
				found = true
			}
		}
		if !found {
			t.Errorf("orphans %v missing %s", rep.Orphans, dangling)
		}
		if _, err := s.GC(); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(dangling); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("dangling dir survived GC: %v", err)
		}
	})

	t.Run("lease-pinned-trash", func(t *testing.T) {
		s, fs := memStore(t)
		meta := buildVideo(t, s, "v")
		meta2, lease, err := s.Snapshot("v")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteVideo("v"); err != nil {
			t.Fatal(err)
		}
		// The pinned tombstones are deferred, not reclaimed.
		gc, err := s.GC()
		if err != nil {
			t.Fatal(err)
		}
		if len(gc.Deferred) != len(meta.SOTs) {
			t.Errorf("GC deferred %v, want %d pinned tombstones", gc.Deferred, len(meta.SOTs))
		}
		// Pinned files still read intact through the lease.
		if _, err := lease.ReadTile(meta2.SOTs[0], 0); err != nil {
			t.Errorf("pinned tombstone unreadable: %v", err)
		}
		rep, _ := s.FSCK()
		if !rep.OK() {
			t.Errorf("FSCK problems on pinned trash: %v", rep.Problems)
		}
		// Released, the next GC pass reclaims everything.
		lease.Release()
		if _, err := s.GC(); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(filepath.Join(s.Root(), trashDirName)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf(".trash survived release+GC: %v", err)
		}
	})
}

// Open's recovery sweep clears staging debris, manifest temp files,
// and stale tombstones.
func TestRecoverySweepOnOpen(t *testing.T) {
	s, fs := memStore(t)
	buildVideo(t, s, "v")
	root := s.Root()
	staging := filepath.Join(root, "v", "frames_20-29.staging")
	tmp := filepath.Join(root, "v", "manifest.json.tmp")
	stale := filepath.Join(root, trashDirName, "old.e0", "frames_0-9")
	for _, dir := range []string{staging, stale} {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile(tmp, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(root, WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{staging, tmp, filepath.Join(root, trashDirName)} {
		if _, err := fs.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("debris %s survived recovery sweep: %v", p, err)
		}
	}
	if _, err := s2.Meta("v"); err != nil {
		t.Errorf("live video damaged by sweep: %v", err)
	}
	if m := s2.Metrics(); m.RecoverySweeps != 1 {
		t.Errorf("RecoverySweeps = %d, want 1", m.RecoverySweeps)
	}
	if rep, _ := s2.FSCK(); !rep.OK() {
		t.Errorf("FSCK after sweep: %v", rep.Problems)
	}
}

// A manifest whose bytes were altered after commit fails its own
// checksum and is reported corrupt rather than trusted.
func TestManifestChecksumDetectsTampering(t *testing.T) {
	s, fs := memStore(t)
	buildVideo(t, s, "v")
	path := filepath.Join(s.Root(), "v", "manifest.json")
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"frame_count": 20`, `"frame_count": 21`, 1)
	if tampered == string(data) {
		t.Fatal("tampering had no effect; test fixture drifted")
	}
	if err := fs.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	s.invalidateManifest("v")
	if _, err := s.Meta("v"); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Errorf("tampered manifest read = %v, want corrupt-manifest error", err)
	}
	if rep, _ := s.FSCK(); rep.OK() {
		t.Error("FSCK clean despite tampered manifest")
	}
}
