package tilestore

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
)

// sotDirPattern matches version directories (frames_<a>-<b> or
// frames_<a>-<b>.r<N>) and their .staging working copies.
var sotDirPattern = regexp.MustCompile(`^frames_(\d+)-(\d+)(\.r(\d+))?(\.staging)?$`)

// GCReport describes what one GC pass reclaimed.
type GCReport struct {
	// Removed lists the paths deleted: dead version directories, staging
	// debris, stray manifest temp files, and orphan video directories left
	// by a crashed ingest.
	Removed []string
	// Deferred lists dead version directories still pinned by read leases;
	// they are reclaimed automatically when the last lease drops.
	Deferred []string
}

// GC reclaims storage that no catalog record references: version
// directories superseded by a re-tile, .staging debris from interrupted
// writes, manifest temp files, and video directories with no manifest.
// Directories pinned by a read lease are left alone and reported as
// deferred. GC runs under the store's write lock, so it cannot race an
// in-flight ingest or re-tile.
func (s *Store) GC() (GCReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep GCReport
	videos, err := s.fs.ReadDir(s.root)
	if err != nil {
		return rep, err
	}
	for _, v := range videos {
		if !v.IsDir() {
			continue
		}
		name := v.Name()
		if name == trashDirName {
			if err := s.gcTrashLocked(&rep); err != nil {
				return rep, err
			}
			continue
		}
		vdir := filepath.Join(s.root, name)
		meta, metaErr := s.metaFromDisk(name)
		if metaErr != nil {
			// Whatever the parsed-manifest cache believes about this video,
			// the disk no longer backs it; drop the entry so reads report
			// the video's true state instead of a phantom catalog record.
			s.invalidateManifest(name)
			if _, err := s.fs.Stat(filepath.Join(vdir, "manifest.json")); err == nil {
				// Manifest present but unreadable: an integrity problem for
				// fsck and the operator, not debris for GC to erase.
				continue
			}
		}

		live := map[string]bool{}
		if metaErr == nil {
			for _, sot := range meta.SOTs {
				if dir, err := s.resolveSOTDir(name, sot); err == nil {
					live[filepath.Base(dir)] = true
				}
			}
		}
		leased := map[string]bool{}
		s.leaseMu.Lock()
		for k, e := range s.leases {
			if k.video == name && e.refs > 0 {
				leased[filepath.Base(e.dir)] = true
			}
		}
		s.leaseMu.Unlock()

		entries, err := s.fs.ReadDir(vdir)
		if err != nil {
			return rep, err
		}
		removable := 0
		for _, ent := range entries {
			base := ent.Name()
			p := filepath.Join(vdir, base)
			switch {
			case base == "manifest.json" && metaErr == nil:
				continue
			case live[base]:
				continue
			case leased[base]:
				rep.Deferred = append(rep.Deferred, p)
				continue
			case !sotDirPattern.MatchString(base) && base != "manifest.json.tmp" && base != "manifest.json":
				// Not something this store wrote; fsck flags it, GC leaves
				// it alone.
				continue
			}
			if err := s.fs.RemoveAll(p); err != nil {
				return rep, err
			}
			rep.Removed = append(rep.Removed, p)
			removable++
		}
		// A video directory holding nothing live (no manifest survived and
		// nothing is leased) is itself debris from a crashed ingest.
		if metaErr != nil && removable == len(entries) {
			if err := s.fs.Remove(vdir); err == nil {
				rep.Removed = append(rep.Removed, vdir)
			}
		}
	}
	sort.Strings(rep.Removed)
	sort.Strings(rep.Deferred)
	return rep, nil
}

// gcTrashLocked reclaims tombstoned version directories of deleted videos
// (.trash/<video>.e<epoch>/frames_…) that no lease still pins — the
// normal case only after a crash, since releases reap their own
// tombstones.
func (s *Store) gcTrashLocked(rep *GCReport) error {
	trash := filepath.Join(s.root, trashDirName)
	pinned := map[string]bool{}
	s.leaseMu.Lock()
	for _, e := range s.leases {
		if e.refs > 0 {
			pinned[e.dir] = true
		}
	}
	s.leaseMu.Unlock()
	epochs, err := s.fs.ReadDir(trash)
	if err != nil {
		return err
	}
	for _, ep := range epochs {
		edir := filepath.Join(trash, ep.Name())
		entries, err := s.fs.ReadDir(edir)
		if err != nil {
			return err
		}
		kept := 0
		for _, ent := range entries {
			p := filepath.Join(edir, ent.Name())
			if pinned[p] {
				rep.Deferred = append(rep.Deferred, p)
				kept++
				continue
			}
			if err := s.fs.RemoveAll(p); err != nil {
				return err
			}
			rep.Removed = append(rep.Removed, p)
		}
		if kept == 0 {
			if err := s.fs.Remove(edir); err == nil {
				rep.Removed = append(rep.Removed, edir)
			}
		}
	}
	s.fs.Remove(trash) // gone once empty
	return nil
}

// FsckReport summarizes a store consistency check.
type FsckReport struct {
	Videos int
	SOTs   int
	Tiles  int
	// Leases is the number of distinct SOT versions currently pinned by
	// readers.
	Leases int
	// Problems are integrity violations: unreadable manifests, missing
	// version directories or tile files, and tiles whose frame count or
	// dimensions contradict the manifest's layout.
	Problems []string
	// Orphans are paths GC would reclaim (dead versions, staging debris);
	// they are not integrity violations.
	Orphans []string
}

// OK reports whether the check found no integrity problems.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

// FSCK verifies every video's manifest against the bytes on disk: the
// live version directory of each SOT must exist and hold one decodable
// tile file per layout tile, with the frame count and dimensions the
// manifest promises. Unreferenced directories are reported as orphans for
// GC. FSCK only reads; it never repairs.
func (s *Store) FSCK() (FsckReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.leaseMu.Lock()
	rep := FsckReport{Leases: len(s.leases)}
	s.leaseMu.Unlock()
	problemf := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}
	videos, err := s.fs.ReadDir(s.root)
	if err != nil {
		return rep, err
	}
	for _, v := range videos {
		if !v.IsDir() {
			continue
		}
		name := v.Name()
		vdir := filepath.Join(s.root, name)
		if name == trashDirName {
			// Tombstones of deleted videos; unpinned ones are GC's to
			// reclaim.
			pinned := map[string]bool{}
			s.leaseMu.Lock()
			for _, e := range s.leases {
				if e.refs > 0 {
					pinned[e.dir] = true
				}
			}
			s.leaseMu.Unlock()
			// .trash/<video>.e<epoch>/<version dir>: every unpinned
			// entry — tombstones and quarantined versions alike — is an
			// orphan for GC.
			if eps, err := s.fs.ReadDir(vdir); err == nil {
				for _, ep := range eps {
					if !ep.IsDir() {
						continue
					}
					edir := filepath.Join(vdir, ep.Name())
					ents, err := s.fs.ReadDir(edir)
					if err != nil {
						continue
					}
					for _, ent := range ents {
						if p := filepath.Join(edir, ent.Name()); ent.IsDir() && !pinned[p] {
							rep.Orphans = append(rep.Orphans, p)
						}
					}
				}
			}
			continue
		}
		meta, metaErr := s.metaFromDisk(name)
		if metaErr != nil {
			if _, err := s.fs.Stat(filepath.Join(vdir, "manifest.json")); err == nil {
				problemf("video %s: %v", name, metaErr)
			} else {
				rep.Orphans = append(rep.Orphans, vdir)
			}
			continue
		}
		rep.Videos++
		live := map[string]bool{}
		// Coverage starts at the retention watermark: a trimmed live
		// video's first stored SOT begins where the trim left off, not at
		// frame 0.
		covered := meta.TrimmedTo
		for _, sot := range meta.SOTs {
			rep.SOTs++
			if sot.From != covered || sot.To <= sot.From {
				problemf("video %s SOT %d: frame range [%d,%d) does not continue at frame %d", name, sot.ID, sot.From, sot.To, covered)
			}
			covered = sot.To
			dir, err := s.resolveSOTDir(name, sot)
			if err != nil {
				problemf("video %s SOT %d: missing version directory %s", name, sot.ID, sotDirName(sot))
				continue
			}
			live[filepath.Base(dir)] = true
			for i := 0; i < sot.L.NumTiles(); i++ {
				path := filepath.Join(dir, tileFileName(i))
				tv, err := s.ReadTile(name, sot, i)
				if err != nil {
					problemf("video %s SOT %d: %s: %v", name, sot.ID, path, err)
					continue
				}
				rep.Tiles++
				if tv.FrameCount() != sot.NumFrames() {
					problemf("video %s SOT %d: %s has %d frames, manifest says %d", name, sot.ID, path, tv.FrameCount(), sot.NumFrames())
				}
				if r := sot.L.TileRectByIndex(i); tv.W != r.Width() || tv.H != r.Height() {
					problemf("video %s SOT %d: %s is %dx%d, layout says %dx%d", name, sot.ID, path, tv.W, tv.H, r.Width(), r.Height())
				}
			}
		}
		if covered != meta.FrameCount {
			problemf("video %s: SOTs cover %d frames, manifest says %d", name, covered, meta.FrameCount)
		}
		entries, err := s.fs.ReadDir(vdir)
		if err != nil {
			return rep, err
		}
		for _, ent := range entries {
			base := ent.Name()
			if base == "manifest.json" || live[base] {
				continue
			}
			if sotDirPattern.MatchString(base) || base == "manifest.json.tmp" {
				rep.Orphans = append(rep.Orphans, filepath.Join(vdir, base))
			} else {
				problemf("video %s: unrecognized entry %s", name, base)
			}
		}
	}
	sort.Strings(rep.Problems)
	sort.Strings(rep.Orphans)
	return rep, nil
}
