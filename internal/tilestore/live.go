package tilestore

// Live (append-mode) videos. A live video's catalog record grows one SOT
// at a time: AppendSOT writes the new version directory with the same
// staging/fsync discipline as CreateVideo, then flips the manifest — the
// store's one atomic commit point — so a crash mid-append leaves the
// previously committed prefix intact and the recovery sweep (plus GC's
// orphan collection) reclaims the half-written directory. Retention
// trims expired SOTs through the same retire/tombstone machinery
// re-tiles use, so a subscriber holding a lease on an aged-out SOT
// keeps its files until the lease drops.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// RetentionPolicy bounds how much of a live video is kept. Zero fields
// are unlimited; when both are set, either bound can expire a SOT. The
// newest SOT is never trimmed, so a live video always retains its most
// recent commit.
type RetentionPolicy struct {
	// MaxAgeFrames expires SOTs whose last frame is more than this many
	// frames behind the append head (frames are the store's clock; at
	// FPS f this is age·f for a wall-clock age).
	MaxAgeFrames int `json:"max_age_frames,omitempty"`
	// MaxBytes expires oldest-first SOTs while the video's live tile
	// bytes exceed this bound.
	MaxBytes int64 `json:"max_bytes,omitempty"`
}

// CreateLiveVideo registers an empty append-mode video. The geometry
// (even, positive dimensions; positive fps and GOP length) is fixed at
// creation, since every appended frame must match it.
func (s *Store) CreateLiveVideo(meta VideoMeta) error {
	if err := validName(meta.Name); err != nil {
		return err
	}
	if meta.W <= 0 || meta.H <= 0 || meta.W%2 != 0 || meta.H%2 != 0 {
		return fmt.Errorf("tilestore: %w: live video dimensions %dx%d", tasmerr.ErrInvalidName, meta.W, meta.H)
	}
	if meta.FPS <= 0 || meta.GOPLength <= 0 {
		return fmt.Errorf("tilestore: %w: live video needs positive fps and GOP length", tasmerr.ErrInvalidName)
	}
	meta.Live = true
	meta.Sealed = false
	meta.FrameCount = 0
	meta.SOTs = nil
	meta.NextSOT = 0
	meta.TrimmedTo = 0
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.videoDir(meta.Name)
	if _, err := s.fs.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return fmt.Errorf("tilestore: %w: %q", tasmerr.ErrVideoExists, meta.Name)
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.writeManifest(meta); err != nil {
		s.fs.RemoveAll(dir)
		return err
	}
	// Commit point: the video directory entry itself becomes durable.
	return s.fs.SyncDir(s.root)
}

// AppendSOT appends one committed SOT to a live video: the tiles (one
// GOP's worth, matching l) are written with full commit discipline,
// then the manifest flip publishes them. Returns the committed SOT's
// catalog record. Appending to a sealed or batch video fails with
// tasmerr.ErrVideoSealed.
func (s *Store) AppendSOT(video string, l layout.Layout, tiles []*container.Video) (SOTMeta, error) {
	if len(tiles) == 0 {
		return SOTMeta{}, fmt.Errorf("tilestore: %w: append with no tiles", tasmerr.ErrNoFrames)
	}
	n := tiles[0].FrameCount()
	if n <= 0 {
		return SOTMeta{}, fmt.Errorf("tilestore: %w: append with empty tiles", tasmerr.ErrNoFrames)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return SOTMeta{}, err
	}
	if !meta.Live {
		return SOTMeta{}, fmt.Errorf("tilestore: %w: cannot append to %q", tasmerr.ErrVideoSealed, video)
	}
	sot := SOTMeta{ID: meta.NextSOT, From: meta.FrameCount, To: meta.FrameCount + n, L: l}
	crcs, err := s.writeSOTDir(video, sot, tiles)
	if err != nil {
		// Leave no staging debris for a retried append to trip over; the
		// version directory name will be reused by the retry.
		s.fs.RemoveAll(s.sotDir(video, sot))
		return SOTMeta{}, err
	}
	sot.TileCRCs = crcs
	meta.SOTs = append(meta.SOTs, sot)
	meta.FrameCount = sot.To
	meta.NextSOT = sot.ID + 1
	if err := s.writeManifest(meta); err != nil {
		return SOTMeta{}, err
	}
	return sot, nil
}

// SealVideo converts a live video into a normal batch one: appends are
// refused from the commit onward, reads are unchanged. Sealing is
// idempotent-hostile on purpose — sealing a video that is not live
// reports tasmerr.ErrVideoSealed so automation notices double seals.
func (s *Store) SealVideo(video string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return err
	}
	if !meta.Live {
		return fmt.Errorf("tilestore: %w: %q is not live", tasmerr.ErrVideoSealed, video)
	}
	meta.Live = false
	meta.Sealed = true
	return s.writeManifest(meta)
}

// SetRetention installs (or, with nil, clears) a live video's retention
// policy. Only live videos carry retention; a sealed or batch video is
// a finished artifact.
func (s *Store) SetRetention(video string, pol *RetentionPolicy) error {
	if pol != nil && (pol.MaxAgeFrames < 0 || pol.MaxBytes < 0) {
		return fmt.Errorf("tilestore: %w: negative retention bounds", tasmerr.ErrInvalidRange)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return err
	}
	if !meta.Live {
		return fmt.Errorf("tilestore: %w: retention on %q, which is not live", tasmerr.ErrVideoSealed, video)
	}
	meta.Retention = pol
	return s.writeManifest(meta)
}

// TrimReport describes one retention pass.
type TrimReport struct {
	// Removed lists the trimmed SOT ids, oldest first.
	Removed []int `json:"removed,omitempty"`
	// TrimmedTo is the first frame still stored after the pass.
	TrimmedTo int `json:"trimmed_to"`
	// FreedBytes is the live tile bytes the trimmed SOTs held. Leased
	// SOTs are tombstoned, not removed, so the bytes free when the
	// last lease drops.
	FreedBytes int64 `json:"freed_bytes"`
}

// TrimExpired applies a live video's retention policy: leading SOTs
// expired by age or total-bytes pressure are dropped from the catalog
// (the manifest flip is the commit) and their version directories
// retired through the same lease-aware machinery a re-tile uses —
// removed now if unleased, tombstoned until the last lease drops
// otherwise. A video with no policy (or nothing expired) is a no-op.
func (s *Store) TrimExpired(video string) (TrimReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return TrimReport{}, err
	}
	rep := TrimReport{TrimmedTo: meta.TrimmedTo}
	pol := meta.Retention
	if !meta.Live || pol == nil || len(meta.SOTs) == 0 {
		return rep, nil
	}
	// Size every SOT up front: the bytes bound needs the total, and the
	// report wants freed bytes either way.
	sizes := make([]int64, len(meta.SOTs))
	var total int64
	for i, sot := range meta.SOTs {
		if sizes[i], err = s.sotBytesLocked(video, sot); err != nil {
			return rep, err
		}
		total += sizes[i]
	}
	cut := 0
	// The newest SOT is never trimmed (cut < len-1): a live video always
	// retains its most recent commit.
	for cut < len(meta.SOTs)-1 {
		sot := meta.SOTs[cut]
		expired := false
		if pol.MaxAgeFrames > 0 && sot.To <= meta.FrameCount-pol.MaxAgeFrames {
			expired = true
		}
		if pol.MaxBytes > 0 && total > pol.MaxBytes {
			expired = true
		}
		if !expired {
			break
		}
		total -= sizes[cut]
		cut++
	}
	if cut == 0 {
		return rep, nil
	}
	trimmed := meta.SOTs[:cut]
	// Resolve the victims' directories before the manifest forgets them.
	dirs := make([]string, cut)
	for i, sot := range trimmed {
		if dirs[i], err = s.resolveSOTDir(video, sot); err != nil {
			return rep, err
		}
	}
	meta.SOTs = append([]SOTMeta(nil), meta.SOTs[cut:]...)
	meta.TrimmedTo = meta.SOTs[0].From
	if err := s.writeManifest(meta); err != nil {
		return rep, err
	}
	for i, sot := range trimmed {
		rep.Removed = append(rep.Removed, sot.ID)
		rep.FreedBytes += sizes[i]
		s.retireLocked(video, sot, dirs[i])
	}
	rep.TrimmedTo = meta.TrimmedTo
	return rep, nil
}

// sotBytesLocked sums one SOT version's tile file sizes; the caller
// holds mu.
func (s *Store) sotBytesLocked(video string, sot SOTMeta) (int64, error) {
	dir, err := s.resolveSOTDir(video, sot)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := 0; i < sot.L.NumTiles(); i++ {
		st, err := s.fs.Stat(filepath.Join(dir, tileFileName(i)))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}
