package tilestore

import (
	"errors"
	"os"
	"testing"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// liveStore opens a store with an empty live video of the standard test
// geometry (128x96 @10fps, GOP 10) and returns both.
func liveStore(t *testing.T, pol *RetentionPolicy) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := VideoMeta{Name: "cam", W: 128, H: 96, FPS: 10, GOPLength: 10, Retention: pol}
	if err := s.CreateLiveVideo(meta); err != nil {
		t.Fatal(err)
	}
	return s
}

// appendGOP appends one 10-frame untiled SOT (the shape core's append
// path commits) and returns its catalog record.
func appendGOP(t *testing.T, s *Store, video string, shift int) SOTMeta {
	t.Helper()
	l := layout.Single(128, 96)
	tiles, err := container.EncodeTiled(makeFrames(128, 96, 10, shift), l, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	sot, err := s.AppendSOT(video, l, tiles)
	if err != nil {
		t.Fatal(err)
	}
	return sot
}

func TestCreateLiveVideoAndAppend(t *testing.T) {
	s := liveStore(t, nil)
	meta, err := s.Meta("cam")
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Live || meta.Sealed || meta.FrameCount != 0 || len(meta.SOTs) != 0 {
		t.Fatalf("fresh live meta = %+v", meta)
	}

	// Appends grow the catalog one SOT at a time with contiguous frame
	// ranges and sequential ids.
	for i := 0; i < 3; i++ {
		sot := appendGOP(t, s, "cam", 30*i)
		if sot.ID != i || sot.From != 10*i || sot.To != 10*(i+1) {
			t.Fatalf("append %d = %+v", i, sot)
		}
	}
	meta, _ = s.Meta("cam")
	if meta.FrameCount != 30 || len(meta.SOTs) != 3 || meta.NextSOT != 3 {
		t.Fatalf("meta after 3 appends = %+v", meta)
	}
	// Committed tiles read back like any batch video's.
	if _, err := s.ReadTile("cam", meta.SOTs[2], 0); err != nil {
		t.Fatalf("ReadTile on appended SOT: %v", err)
	}
}

func TestCreateLiveVideoValidation(t *testing.T) {
	s, _ := Open(t.TempDir())
	bad := []VideoMeta{
		{Name: "v", W: 0, H: 96, FPS: 10, GOPLength: 10},
		{Name: "v", W: 127, H: 96, FPS: 10, GOPLength: 10}, // odd width
		{Name: "v", W: 128, H: 96, FPS: 0, GOPLength: 10},
		{Name: "v", W: 128, H: 96, FPS: 10, GOPLength: 0},
		{Name: "../evil", W: 128, H: 96, FPS: 10, GOPLength: 10},
	}
	for _, m := range bad {
		if err := s.CreateLiveVideo(m); err == nil {
			t.Errorf("CreateLiveVideo(%+v) accepted", m)
		}
	}
	ok := VideoMeta{Name: "v", W: 128, H: 96, FPS: 10, GOPLength: 10}
	if err := s.CreateLiveVideo(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateLiveVideo(ok); !errors.Is(err, tasmerr.ErrVideoExists) {
		t.Errorf("duplicate live create = %v, want ErrVideoExists", err)
	}
}

func TestSealVideo(t *testing.T) {
	s := liveStore(t, nil)
	appendGOP(t, s, "cam", 0)
	if err := s.SealVideo("cam"); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("cam")
	if meta.Live || !meta.Sealed {
		t.Fatalf("sealed meta = %+v", meta)
	}
	// Appends after the seal are typed conflicts, as is a double seal.
	l := layout.Single(128, 96)
	tiles, _ := container.EncodeTiled(makeFrames(128, 96, 10, 0), l, 10, params())
	if _, err := s.AppendSOT("cam", l, tiles); !errors.Is(err, tasmerr.ErrVideoSealed) {
		t.Errorf("append after seal = %v, want ErrVideoSealed", err)
	}
	if err := s.SealVideo("cam"); !errors.Is(err, tasmerr.ErrVideoSealed) {
		t.Errorf("double seal = %v, want ErrVideoSealed", err)
	}
	// Sealed videos still read.
	if _, err := s.ReadTile("cam", meta.SOTs[0], 0); err != nil {
		t.Errorf("read after seal: %v", err)
	}
}

func TestAppendToBatchVideoFails(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "batch")
	l := layout.Single(128, 96)
	tiles, _ := container.EncodeTiled(makeFrames(128, 96, 10, 0), l, 10, params())
	if _, err := s.AppendSOT("batch", l, tiles); !errors.Is(err, tasmerr.ErrVideoSealed) {
		t.Errorf("append to batch video = %v, want ErrVideoSealed", err)
	}
}

func TestSetRetentionValidation(t *testing.T) {
	s := liveStore(t, nil)
	if err := s.SetRetention("cam", &RetentionPolicy{MaxAgeFrames: -1}); !errors.Is(err, tasmerr.ErrInvalidRange) {
		t.Errorf("negative age bound = %v, want ErrInvalidRange", err)
	}
	if err := s.SetRetention("cam", &RetentionPolicy{MaxAgeFrames: 20}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRetention("cam", nil); err != nil {
		t.Fatalf("clearing retention: %v", err)
	}
	if err := s.SealVideo("cam"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRetention("cam", &RetentionPolicy{MaxAgeFrames: 20}); !errors.Is(err, tasmerr.ErrVideoSealed) {
		t.Errorf("retention on sealed video = %v, want ErrVideoSealed", err)
	}
}

func TestTrimExpiredByAge(t *testing.T) {
	s := liveStore(t, &RetentionPolicy{MaxAgeFrames: 15})
	for i := 0; i < 4; i++ {
		appendGOP(t, s, "cam", 30*i)
	}
	// Head is 40: SOTs ending at 10 and 20 are >= 15 frames behind it.
	rep, err := s.TrimExpired("cam")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 2 || rep.Removed[0] != 0 || rep.Removed[1] != 1 {
		t.Fatalf("Removed = %v, want [0 1]", rep.Removed)
	}
	if rep.TrimmedTo != 20 || rep.FreedBytes <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	meta, _ := s.Meta("cam")
	if meta.TrimmedTo != 20 || len(meta.SOTs) != 2 || meta.SOTs[0].ID != 2 || meta.FrameCount != 40 {
		t.Fatalf("meta after trim = %+v", meta)
	}
	// Idempotent: nothing further expired.
	rep, err = s.TrimExpired("cam")
	if err != nil || len(rep.Removed) != 0 {
		t.Fatalf("second trim = %+v, %v", rep, err)
	}
}

func TestTrimExpiredByBytes(t *testing.T) {
	s := liveStore(t, nil)
	var sizes []int64
	var prev int64
	for i := 0; i < 3; i++ {
		appendGOP(t, s, "cam", 30*i)
		total, err := s.VideoBytes("cam")
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, total-prev)
		prev = total
	}
	// A bound below the total but above the newest two: exactly the
	// oldest SOT must go.
	if err := s.SetRetention("cam", &RetentionPolicy{MaxBytes: sizes[1] + sizes[2]}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.TrimExpired("cam")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != 0 {
		t.Fatalf("Removed = %v, want [0]", rep.Removed)
	}
	if rep.TrimmedTo != 10 {
		t.Fatalf("TrimmedTo = %d, want 10", rep.TrimmedTo)
	}
}

func TestTrimNeverRemovesNewestSOT(t *testing.T) {
	// Bounds tight enough to expire everything still keep the last SOT:
	// a live video always retains its most recent commit.
	s := liveStore(t, &RetentionPolicy{MaxAgeFrames: 1, MaxBytes: 1})
	for i := 0; i < 3; i++ {
		appendGOP(t, s, "cam", 30*i)
	}
	if _, err := s.TrimExpired("cam"); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Meta("cam")
	if len(meta.SOTs) != 1 || meta.SOTs[0].ID != 2 {
		t.Fatalf("SOTs after aggressive trim = %+v, want only id 2", meta.SOTs)
	}
}

func TestTrimLeasedSOTTombstones(t *testing.T) {
	s := liveStore(t, nil)
	first := appendGOP(t, s, "cam", 0)
	appendGOP(t, s, "cam", 30)
	lease, err := s.AcquireSOT("cam", first)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRetention("cam", &RetentionPolicy{MaxAgeFrames: 5}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.TrimExpired("cam")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != 0 {
		t.Fatalf("Removed = %v, want [0]", rep.Removed)
	}
	// The leased version survives on disk (tombstoned) until released.
	dir := s.sotDir("cam", first)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("leased trimmed SOT dir gone before release: %v", err)
	}
	lease.Release()
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("trimmed SOT dir survives after lease release: %v", err)
	}
	// The catalog no longer serves it regardless of the tombstone.
	meta, _ := s.Meta("cam")
	if len(meta.SOTs) != 1 || meta.SOTs[0].ID != 1 {
		t.Fatalf("catalog after trim = %+v", meta.SOTs)
	}
}
