//go:build !unix

package tilestore

// acquireLock is a no-op where flock is unavailable: the store falls
// back to the pre-lease, single-owner-by-convention behavior.
func acquireLock(root string) (release func() error, err error) {
	return func() error { return nil }, nil
}
