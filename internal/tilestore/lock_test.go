//go:build unix

package tilestore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// TestStoreLockExcludesSecondOpener is the single-owner guarantee: a
// locked store refuses a second locked Open with the typed sentinel
// (flock conflicts hold across processes and across opens within one),
// an unlocked Open — the -force escape hatch — still succeeds, and
// Close releases the lease for the next owner.
func TestStoreLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithLock())
	if err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, WithLock())
	if !errors.Is(err, tasmerr.ErrStoreLocked) {
		t.Fatalf("second locked open: got %v, want ErrStoreLocked", err)
	}
	// The refusal names the owner (pid) so the operator knows what to
	// kill before reaching for -force.
	if !strings.Contains(err.Error(), "pid ") {
		t.Errorf("lock error %q does not name the owner", err)
	}

	// The escape hatch: an unlocked open ignores the lease.
	forced, err := Open(dir)
	if err != nil {
		t.Fatalf("unlocked open against a held lease: %v", err)
	}
	if err := forced.Close(); err != nil {
		t.Fatal(err)
	}

	// Release and re-acquire.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	s2, err := Open(dir, WithLock())
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	defer s2.Close()

	// The lock file is a plain dotfile: the catalog must not list it.
	if _, err := os.Stat(filepath.Join(dir, lockFileName)); err != nil {
		t.Fatalf("lock file missing: %v", err)
	}
	videos, err := s2.ListVideos()
	if err != nil {
		t.Fatal(err)
	}
	if len(videos) != 0 {
		t.Fatalf("lock file leaked into the catalog: %v", videos)
	}
}
