//go:build unix

package tilestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// acquireLock takes the store's cross-process ownership lease: an
// exclusive, non-blocking flock on <root>/.lock. The lease is advisory
// but every path into the store that caches state (tasmd, tasmctl -dir,
// the library's core.Open) takes it, so a second opener fails fast with
// tasmerr.ErrStoreLocked instead of reading caches the owner is about
// to invalidate. The file records the owner's pid and host purely for
// the error message on the losing side; the kernel drops the lock when
// the owning process exits, so a crashed owner never wedges the store.
//
// The lock file is never removed on release: unlinking a locked-over
// file races a concurrent opener onto a deleted inode, silently
// granting two "exclusive" leases on different files.
func acquireLock(root string) (release func() error, err error) {
	path := filepath.Join(root, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tilestore: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner, _ := io.ReadAll(io.LimitReader(f, 256))
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			msg := strings.TrimSpace(string(owner))
			if msg == "" {
				msg = "unknown owner"
			}
			return nil, fmt.Errorf("tilestore: %s held by %s: %w", root, msg, tasmerr.ErrStoreLocked)
		}
		return nil, fmt.Errorf("tilestore: locking %s: %w", path, err)
	}
	host, _ := os.Hostname()
	if err := f.Truncate(0); err == nil {
		if _, err := f.Seek(0, io.SeekStart); err == nil {
			fmt.Fprintf(f, "pid %d on %s", os.Getpid(), host)
			f.Sync()
		}
	}
	return f.Close, nil
}
