package tilestore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// encodeTiles produces a fresh tile set for a SOT re-tile in tests.
func encodeTiles(t *testing.T, w, h, n int, l layout.Layout) []*container.Video {
	t.Helper()
	tiles, err := container.EncodeTiled(makeFrames(w, h, n, 12), l, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	return tiles
}

// TestManifestCacheCoherence asserts the in-memory manifest cache is
// invalidated (or refreshed) by every writer: a re-tile is visible in the
// next Meta, a delete makes the video unknown, and a re-ingest under the
// same name serves the new catalog record.
func TestManifestCacheCoherence(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := buildVideo(t, s, "v")

	// Warm the cache.
	got, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.SOTs[0].Retiles != 0 {
		t.Fatalf("fresh video has retiles = %d", got.SOTs[0].Retiles)
	}

	// Re-tile SOT 0 and require the next read to see the bump.
	tiles := encodeTiles(t, meta.W, meta.H, meta.SOTs[0].NumFrames(), meta.SOTs[0].L)
	if err := s.ReplaceSOT("v", 0, meta.SOTs[0].L, tiles); err != nil {
		// The same layout is fine for the cache test; the store does not
		// compare layouts, only versions.
		t.Fatal(err)
	}
	got, err = s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.SOTs[0].Retiles != 1 {
		t.Fatalf("Meta after ReplaceSOT: retiles = %d, want 1 (stale cache?)", got.SOTs[0].Retiles)
	}

	// Mutating the returned record must not corrupt the cached copy.
	got.SOTs[0].Retiles = 99
	again, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if again.SOTs[0].Retiles != 1 {
		t.Fatalf("caller mutation leaked into the cache: retiles = %d", again.SOTs[0].Retiles)
	}

	// Delete: the cache must not resurrect the video.
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Meta("v"); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Fatalf("Meta after delete: %v, want ErrVideoNotFound", err)
	}

	// Re-ingest under the same name: the new record is served.
	meta2 := buildVideo(t, s, "v")
	got, err = s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameCount != meta2.FrameCount || got.SOTs[0].Retiles != 0 {
		t.Fatalf("Meta after re-ingest = %+v", got)
	}
}

// TestGCDropsStaleManifestCache asserts a GC pass that finds a video's
// manifest gone from disk also drops the cached catalog record, so reads
// stop serving a phantom video.
func TestGCDropsStaleManifestCache(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v")
	if _, err := s.Meta("v"); err != nil { // warm the cache
		t.Fatal(err)
	}
	// Simulate external loss of the manifest (crash, operator mistake).
	if err := os.Remove(filepath.Join(s.Root(), "v", "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Meta("v"); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Fatalf("Meta after GC of manifest-less video: %v, want ErrVideoNotFound (stale cache?)", err)
	}
}

// TestSnapshotTypedErrors pins the store-level taxonomy.
func TestSnapshotTypedErrors(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Snapshot("nosuch"); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Errorf("snapshot of missing video: %v", err)
	}
	if _, _, err := s.Snapshot("../escape"); !errors.Is(err, tasmerr.ErrInvalidName) {
		t.Errorf("snapshot of invalid name: %v", err)
	}
	buildVideo(t, s, "v")
	if err := s.CreateVideo(VideoMeta{Name: "v"}, nil); !errors.Is(err, tasmerr.ErrVideoExists) {
		t.Errorf("duplicate create: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SnapshotContext(ctx, "v"); !errors.Is(err, context.Canceled) {
		t.Errorf("snapshot under cancelled ctx: %v", err)
	}
	// A stale lease must classify its conflict: re-tile vs delete.
	m1, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	tiles := encodeTiles(t, m1.W, m1.H, m1.SOTs[0].NumFrames(), m1.SOTs[0].L)
	if err := s.ReplaceSOT("v", 0, m1.SOTs[0].L, tiles); err != nil {
		t.Fatal(err)
	}
	tiles2 := encodeTiles(t, m1.W, m1.H, m1.SOTs[0].NumFrames(), m1.SOTs[0].L)
	if err := s.ReplaceSOTLeased(lease, "v", 0, m1.SOTs[0].L, tiles2); !errors.Is(err, tasmerr.ErrRetileConflict) {
		t.Errorf("commit from superseded snapshot: %v, want ErrRetileConflict", err)
	}
	lease.Release()

	_, lease2, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v")
	if err := s.ReplaceSOTLeased(lease2, "v", 0, m1.SOTs[0].L, tiles2); !errors.Is(err, tasmerr.ErrVideoDeleted) {
		t.Errorf("commit across delete/re-ingest: %v, want ErrVideoDeleted", err)
	}
	lease2.Release()
}

// TestConcurrentSnapshotsDontSerialize exercises the read-lock snapshot
// path under race: many snapshot/release cycles concurrent with re-tiles
// and a delete/re-ingest, all against the cached manifest.
func TestConcurrentSnapshotsDontSerialize(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, lease, err := s.Snapshot("v")
				if err != nil {
					continue // deleted mid-cycle; the next ingest revives it
				}
				if _, err := lease.ReadTile(m.SOTs[0], 0); err != nil {
					t.Error(err)
				}
				lease.Release()
			}
		}()
	}
	for i := 0; i < 5; i++ {
		cur, err := s.Meta("v")
		if err != nil {
			t.Fatal(err)
		}
		tiles := encodeTiles(t, cur.W, cur.H, cur.SOTs[0].NumFrames(), cur.SOTs[0].L)
		if err := s.ReplaceSOT("v", 0, cur.SOTs[0].L, tiles); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v")
	close(stop)
	wg.Wait()
	if rep, err := s.GC(); err != nil || len(rep.Deferred) != 0 {
		t.Fatalf("GC after quiesce: %+v (err %v)", rep, err)
	}
	if fr, err := s.FSCK(); err != nil || !fr.OK() || fr.Leases != 0 {
		t.Fatalf("FSCK after quiesce: %+v (err %v)", fr, err)
	}
}
