package tilestore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/layout"
)

// decodeAll decodes every frame of a tile for byte comparisons.
func decodeAll(t *testing.T, tv *container.Video) []byte {
	t.Helper()
	frames, _, err := tv.DecodeRange(0, tv.FrameCount())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, f := range frames {
		buf.Write(f.Y)
		buf.Write(f.Cb)
		buf.Write(f.Cr)
	}
	return buf.Bytes()
}

// TestLeaseDefersGC pins a SOT version with a snapshot lease, re-tiles it,
// and asserts the old version's files survive — and serve the old bytes —
// until the lease is released, at which point they are reaped.
func TestLeaseDefersGC(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H
	oldSOT := meta.SOTs[0]
	oldDir := filepath.Join(s.Root(), "v", "frames_0-9")

	snapMeta, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(snapMeta.SOTs) != 2 {
		t.Fatalf("snapshot has %d SOTs", len(snapMeta.SOTs))
	}
	before, err := s.ReadTile("v", oldSOT, 0)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := decodeAll(t, before)

	l22, _ := layout.Uniform(2, 2, cons(w, h))
	newTiles, err := container.EncodeTiled(makeFrames(w, h, 10, 5), l22, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceSOT("v", 0, l22, newTiles); err != nil {
		t.Fatal(err)
	}

	// Old version still on disk and byte-identical while the lease holds.
	if _, err := os.Stat(oldDir); err != nil {
		t.Fatalf("leased version dir reaped early: %v", err)
	}
	still, err := s.ReadTile("v", oldSOT, 0)
	if err != nil {
		t.Fatalf("leased version unreadable after retile: %v", err)
	}
	if !bytes.Equal(decodeAll(t, still), refBytes) {
		t.Fatal("leased version's bytes changed under the reader")
	}

	lease.Release()
	lease.Release() // idempotent
	if _, err := os.Stat(oldDir); !os.IsNotExist(err) {
		t.Fatalf("dead version dir not reaped after release: %v", err)
	}
	// Live version unaffected.
	got, _ := s.Meta("v")
	if got.SOTs[0].Retiles != 1 {
		t.Fatalf("Retiles = %d", got.SOTs[0].Retiles)
	}
	if _, err := s.ReadTile("v", got.SOTs[0], 3); err != nil {
		t.Fatal(err)
	}
}

// TestAcquireSupersededVersionFails asserts a stale SOTMeta whose version
// was already reaped cannot be leased (callers must re-Snapshot).
func TestAcquireSupersededVersionFails(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H
	stale := meta.SOTs[0]
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err := s.ReplaceSOT("v", 0, l22, tiles); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireSOT("v", stale); err == nil {
		t.Fatal("acquired a reaped version")
	}
}

// TestDeleteVideoWithLease deletes a video while a snapshot lease pins
// its files, re-creates it under the same name with DIFFERENT pixels, and
// asserts (a) the leased reader keeps getting the deleted generation's
// exact bytes — DeleteVideo tombstones its dirs so the re-ingest cannot
// clobber them — and (b) the release reaps only the tombstones, never the
// re-created video's files.
func TestDeleteVideoWithLease(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H
	snapMeta, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	before, err := lease.ReadTile(snapMeta.SOTs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := decodeAll(t, before)

	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	if videos, _ := s.ListVideos(); len(videos) != 0 {
		t.Fatalf("deleted video still listed: %v", videos)
	}
	// Leased files still readable through the lease (tombstoned).
	if _, err := lease.ReadTile(snapMeta.SOTs[0], 0); err != nil {
		t.Fatalf("leased read after delete: %v", err)
	}

	// Re-create under the same name — same dir names, different pixels.
	meta2 := VideoMeta{
		Name: "v", W: w, H: h, FPS: 10, GOPLength: 10, FrameCount: 10,
		SOTs: []SOTMeta{{ID: 0, From: 0, To: 10, L: layout.Single(w, h)}},
	}
	newTiles, err := container.EncodeTiled(makeFrames(w, h, 10, 60), meta2.SOTs[0].L, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateVideo(meta2, [][]*container.Video{newTiles}); err != nil {
		t.Fatal(err)
	}

	// The leased reader still sees the deleted generation's bytes, not
	// the re-ingested video's.
	still, err := lease.ReadTile(snapMeta.SOTs[0], 0)
	if err != nil {
		t.Fatalf("leased read after re-create: %v", err)
	}
	if !bytes.Equal(decodeAll(t, still), refBytes) {
		t.Fatal("leased reader served the re-ingested video's bytes")
	}
	newMeta, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.ReadTile("v", newMeta.SOTs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(decodeAll(t, fresh), refBytes) {
		t.Fatal("re-created video serves the deleted video's bytes")
	}

	lease.Release()
	// Tombstones reaped; the re-created video survives intact.
	if _, err := os.Stat(filepath.Join(s.Root(), trashDirName)); !os.IsNotExist(err) {
		t.Fatalf("trash not reaped after release: %v", err)
	}
	if _, err := s.ReadTile("v", newMeta.SOTs[0], 0); err != nil {
		t.Fatalf("re-created video reaped by stale lease release: %v", err)
	}
}

// TestReplaceSOTLeasedConflict asserts the lease-validated commit refuses
// to install tiles whose source snapshot was deleted (and re-ingested)
// mid-operation — the RetileSOT ↔ DeleteVideo race.
func TestReplaceSOTLeasedConflict(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H
	_, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "v") // same name, new epoch
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err := s.ReplaceSOTLeased(lease, "v", 0, l22, tiles); err == nil {
		t.Fatal("stale-snapshot replace committed onto the re-ingested video")
	}
	// The re-ingested video is untouched.
	got, err := s.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.SOTs[0].Retiles != 0 || !got.SOTs[0].L.IsSingle() {
		t.Fatalf("re-ingested video mutated: %+v", got.SOTs[0])
	}
	// A lease on the current epoch commits fine.
	_, cur, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if err := s.ReplaceSOTLeased(cur, "v", 0, l22, tiles); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteVideoReapsAfterRelease asserts a delete with no re-creation
// leaves nothing behind once the lease drops.
func TestDeleteVideoReapsAfterRelease(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	_, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteVideo("v"); err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if _, err := os.Stat(filepath.Join(s.Root(), "v")); !os.IsNotExist(err) {
		t.Fatalf("video dir survives delete + release: %v", err)
	}
}

// TestLegacyStoreMigration simulates a store written before version
// directories existed: the manifest records Retiles=1 but the tiles live
// under the unversioned frames_a-b name. Reads must fall back, snapshots
// must lease the legacy dir, and the next re-tile must migrate to a
// versioned dir and reap the legacy one.
func TestLegacyStoreMigration(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H

	// Forge the legacy state: bump SOT 0's retile counter in the manifest
	// without touching the directory layout (old code re-tiled in place).
	meta.SOTs[0].Retiles = 1
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Root(), "v", "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen to drop any in-memory state and read through the fallback.
	s2, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Meta("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.SOTs[0].Retiles != 1 {
		t.Fatalf("Retiles = %d", got.SOTs[0].Retiles)
	}
	if _, err := s2.ReadTile("v", got.SOTs[0], 0); err != nil {
		t.Fatalf("legacy dir not readable via fallback: %v", err)
	}
	if n, err := s2.VideoBytes("v"); err != nil || n <= 0 {
		t.Fatalf("VideoBytes over legacy store: %d, %v", n, err)
	}
	if rep, err := s2.FSCK(); err != nil || !rep.OK() {
		t.Fatalf("fsck over legacy store: %+v, %v", rep.Problems, err)
	}

	// First re-tile migrates: new versioned dir, legacy dir reaped.
	_, lease, err := s2.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err := s2.ReplaceSOT("v", 0, l22, tiles); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(s.Root(), "v", "frames_0-9")
	if _, err := os.Stat(legacy); err != nil {
		t.Fatalf("leased legacy dir reaped early: %v", err)
	}
	lease.Release()
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatal("legacy dir not reaped after migration")
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "v", "frames_0-9.r2")); err != nil {
		t.Fatalf("migrated version dir missing: %v", err)
	}
}

// TestCreateVideoCleanupOnFailure is the regression test for partial
// ingest failure: a failed CreateVideo must leave no orphan SOT dirs or
// .staging debris, and a retried ingest must succeed.
func TestCreateVideoCleanupOnFailure(t *testing.T) {
	s, _ := Open(t.TempDir())
	w, h := 128, 96
	l11 := layout.Single(w, h)
	meta := VideoMeta{
		Name: "v", W: w, H: h, FPS: 10, GOPLength: 10, FrameCount: 20,
		SOTs: []SOTMeta{
			{ID: 0, From: 0, To: 10, L: l11},
			{ID: 1, From: 10, To: 20, L: l11},
		},
	}
	good, err := container.EncodeTiled(makeFrames(w, h, 10, 0), l11, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	short, err := container.EncodeTiled(makeFrames(w, h, 5, 0), l11, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	// SOT 0 writes fine, SOT 1 fails on frame-count mismatch.
	if err := s.CreateVideo(meta, [][]*container.Video{good, short}); err == nil {
		t.Fatal("partial create succeeded")
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "v")); !os.IsNotExist(err) {
		t.Fatalf("failed create left the video dir behind: %v", err)
	}
	// Retried ingest starts fresh.
	good2, _ := container.EncodeTiled(makeFrames(w, h, 10, 30), l11, 10, params())
	if err := s.CreateVideo(meta, [][]*container.Video{good, good2}); err != nil {
		t.Fatalf("retried create failed: %v", err)
	}
	if rep, err := s.FSCK(); err != nil || !rep.OK() || len(rep.Orphans) != 0 {
		t.Fatalf("store not clean after retry: %+v, %v", rep, err)
	}
}

// TestGCReclaimsDebris seeds a store with staging debris, a stray version
// dir, a manifest temp file, and an orphan video dir, then asserts GC
// removes exactly those and FSCK comes back clean.
func TestGCReclaimsDebris(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	vdir := filepath.Join(s.Root(), "v")
	for _, d := range []string{"frames_0-9.staging", "frames_90-99.r3"} {
		if err := os.MkdirAll(filepath.Join(vdir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(vdir, "manifest.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(s.Root(), "crashed-ingest")
	if err := os.MkdirAll(filepath.Join(orphan, "frames_0-9"), 0o755); err != nil {
		t.Fatal(err)
	}

	if rep, err := s.FSCK(); err != nil || len(rep.Orphans) == 0 {
		t.Fatalf("fsck did not flag debris: %+v, %v", rep, err)
	}
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 5 { // 3 debris entries + orphan contents + orphan dir
		t.Fatalf("GC removed %d paths: %v", len(rep.Removed), rep.Removed)
	}
	if len(rep.Deferred) != 0 {
		t.Fatalf("GC deferred %v with no leases held", rep.Deferred)
	}
	after, err := s.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() || len(after.Orphans) != 0 {
		t.Fatalf("store not clean after GC: %+v", after)
	}
	if after.Videos != 1 || after.SOTs != 2 || after.Tiles != 5 {
		t.Fatalf("fsck inventory: %+v", after)
	}
	// The live video is untouched.
	meta, _ := s.Meta("v")
	if _, err := s.ReadTile("v", meta.SOTs[1], 3); err != nil {
		t.Fatal(err)
	}
}

// TestGCLeavesUnknownAndCorrupt asserts GC never erases what it does not
// recognize: files the store did not write, and videos whose manifest is
// present but unreadable. Both are fsck problems for the operator.
func TestGCLeavesUnknownAndCorrupt(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	notes := filepath.Join(s.Root(), "v", "notes.txt")
	if err := os.WriteFile(notes, []byte("operator notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	buildVideo(t, s, "c")
	if err := os.WriteFile(filepath.Join(s.Root(), "c", "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 0 || len(rep.Deferred) != 0 {
		t.Fatalf("GC touched protected content: %+v", rep)
	}
	if _, err := os.Stat(notes); err != nil {
		t.Fatalf("unknown file removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "c", "frames_0-9", "tile0.tsv")); err != nil {
		t.Fatalf("corrupt-manifest video's tiles removed: %v", err)
	}
	fr, err := s.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Problems) != 2 {
		t.Fatalf("fsck should flag the unknown file and the corrupt manifest: %v", fr.Problems)
	}
}

// TestGCDefersLeasedVersions asserts GC leaves a leased dead version in
// place and reports it as deferred.
func TestGCDefersLeasedVersions(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H
	_, lease, err := s.Snapshot("v")
	if err != nil {
		t.Fatal(err)
	}
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err := s.ReplaceSOT("v", 0, l22, tiles); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deferred) != 1 || !strings.HasSuffix(rep.Deferred[0], "frames_0-9") {
		t.Fatalf("Deferred = %v", rep.Deferred)
	}
	if len(rep.Removed) != 0 {
		t.Fatalf("GC removed %v", rep.Removed)
	}
	lease.Release()
	if _, err := os.Stat(filepath.Join(s.Root(), "v", "frames_0-9")); !os.IsNotExist(err) {
		t.Fatal("deferred dir not reaped on release")
	}
}

// TestFSCKReportsProblems asserts fsck flags a missing tile file and a
// missing version directory.
func TestFSCKReportsProblems(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	if err := os.Remove(filepath.Join(s.Root(), "v", "frames_10-19", "tile2.tsv")); err != nil {
		t.Fatal(err)
	}
	rep, err := s.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Problems) != 1 || !strings.Contains(rep.Problems[0], "tile2.tsv") {
		t.Fatalf("Problems = %v", rep.Problems)
	}
	if err := os.RemoveAll(filepath.Join(s.Root(), "v", "frames_0-9")); err != nil {
		t.Fatal(err)
	}
	rep, _ = s.FSCK()
	if len(rep.Problems) != 2 {
		t.Fatalf("Problems = %v", rep.Problems)
	}
}
