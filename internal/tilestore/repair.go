package tilestore

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
)

// RepairReport describes what one Repair pass changed.
type RepairReport struct {
	// Quarantined lists version directories whose tiles failed
	// integrity verification, moved into .trash (GC reclaims them once
	// nothing pins them).
	Quarantined []string
	// Reverted lists SOTs whose catalog record was flipped back to an
	// earlier intact version, as "video SOT <id> -> <dir>".
	Reverted []string
	// Videos lists the videos Repair modified; callers above this
	// layer invalidate caches and refresh pointers for them.
	Videos []string
}

// Repair validates the live version of every SOT against its sealed
// checksums and, for each corrupt or missing version, quarantines the
// damaged directory into .trash and falls back to the newest earlier
// version that still verifies — using the tiles.json sidecar each
// version directory carries to recover its layout and checksums. SOTs
// with no intact fallback stay referenced by the manifest (and keep
// failing FSCK) so the data loss stays visible instead of being
// silently erased. Repair runs under the store's write lock.
func (s *Store) Repair() (RepairReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep RepairReport
	entries, err := s.fs.ReadDir(s.root)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == trashDirName {
			continue
		}
		name := e.Name()
		meta, err := s.metaFromDisk(name)
		if err != nil {
			// No catalog record to repair against; an unreadable
			// manifest is FSCK's problem report, not tile repair's.
			continue
		}
		changed, touched := false, false
		for i, sot := range meta.SOTs {
			dir, dirErr := s.resolveSOTDir(name, sot)
			if dirErr == nil && s.validateVersion(sot, dir) == nil {
				continue
			}
			touched = true
			altDir, altSOT, ok := s.findFallback(name, sot)
			if dirErr == nil {
				q, err := s.quarantineLocked(name, sot, dir)
				if err != nil {
					return rep, err
				}
				rep.Quarantined = append(rep.Quarantined, q)
			}
			if ok {
				meta.SOTs[i] = altSOT
				changed = true
				rep.Reverted = append(rep.Reverted, fmt.Sprintf("%s SOT %d -> %s", name, sot.ID, filepath.Base(altDir)))
				// A still-held lease on the adopted version was marked
				// dead when it was superseded; it is live again, and
				// releasing the lease must not reap it.
				s.leaseMu.Lock()
				k := leaseKey{video: name, epoch: s.epochs[name], sot: altSOT.ID, retiles: altSOT.Retiles}
				if le := s.leases[k]; le != nil {
					le.dead = false
					le.dir = altDir
				}
				s.leaseMu.Unlock()
			}
		}
		if changed {
			if err := s.writeManifest(meta); err != nil {
				return rep, err
			}
		}
		if touched {
			rep.Videos = append(rep.Videos, name)
			// The video's version lineage just forked (a quarantined
			// version's number may be written again by a future
			// re-tile). Bumping the delete epoch retires every
			// outstanding lease key, exactly as DeleteVideo does, so
			// stale snapshots cannot commit against the repaired
			// catalog or collide in the lease table.
			s.leaseMu.Lock()
			s.epochs[name]++
			s.leaseMu.Unlock()
		}
	}
	sort.Strings(rep.Quarantined)
	sort.Strings(rep.Reverted)
	sort.Strings(rep.Videos)
	return rep, nil
}

// validateVersion checks every tile of a version directory against the
// catalog record: present, checksum-intact, parseable, and matching
// the layout's frame count and tile dimensions.
func (s *Store) validateVersion(sot SOTMeta, dir string) error {
	for i := 0; i < sot.L.NumTiles(); i++ {
		tv, err := s.loadTile(dir, sot, i)
		if err != nil {
			return err
		}
		if tv.FrameCount() != sot.NumFrames() {
			return fmt.Errorf("tilestore: %s: tile %d has %d frames, want %d", dir, i, tv.FrameCount(), sot.NumFrames())
		}
		if r := sot.L.TileRectByIndex(i); tv.W != r.Width() || tv.H != r.Height() {
			return fmt.Errorf("tilestore: %s: tile %d is %dx%d, layout says %dx%d", dir, i, tv.W, tv.H, r.Width(), r.Height())
		}
	}
	return nil
}

// findFallback scans the video directory for other committed versions
// of the same frame range, validates each against its own sidecar, and
// returns the newest intact one as a catalog record ready to adopt.
func (s *Store) findFallback(video string, sot SOTMeta) (string, SOTMeta, bool) {
	ents, err := s.fs.ReadDir(s.videoDir(video))
	if err != nil {
		return "", SOTMeta{}, false
	}
	best := -1
	var bestDir string
	var bestSOT SOTMeta
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		m := sotDirPattern.FindStringSubmatch(e.Name())
		if m == nil || m[5] != "" { // not a version dir, or .staging
			continue
		}
		from, _ := strconv.Atoi(m[1])
		toIncl, _ := strconv.Atoi(m[2])
		if from != sot.From || toIncl != sot.To-1 {
			continue
		}
		ver := 0
		if m[4] != "" {
			ver, _ = strconv.Atoi(m[4])
		}
		if ver == sot.Retiles || ver <= best {
			continue
		}
		dir := filepath.Join(s.videoDir(video), e.Name())
		side, err := s.readSidecar(dir)
		if err != nil || side.From != sot.From || side.To != sot.To {
			continue
		}
		cand := SOTMeta{ID: sot.ID, From: sot.From, To: sot.To, L: side.L, Retiles: ver, TileCRCs: side.TileCRCs}
		if s.validateVersion(cand, dir) != nil {
			continue
		}
		best, bestDir, bestSOT = ver, dir, cand
	}
	return bestDir, bestSOT, best >= 0
}

// quarantineLocked moves a corrupt version directory into the
// tombstone area and dooms any live lease on it, mirroring
// DeleteVideo's tombstoning so in-flight readers fail with the
// corruption error rather than a vanished directory.
func (s *Store) quarantineLocked(video string, sot SOTMeta, dir string) (string, error) {
	trash := filepath.Join(s.root, trashDirName, fmt.Sprintf("%s.e%d", video, s.epochs[video]))
	if err := s.fs.MkdirAll(trash, 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(trash, filepath.Base(dir))
	for i := 1; ; i++ {
		if _, err := s.fs.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(trash, fmt.Sprintf("%s.q%d", filepath.Base(dir), i))
	}
	if err := s.fs.Rename(dir, dst); err != nil {
		return "", err
	}
	for _, p := range []string{trash, filepath.Dir(trash), s.root, filepath.Dir(dir)} {
		if err := s.fs.SyncDir(p); err != nil {
			return dst, err
		}
	}
	s.leaseMu.Lock()
	k := leaseKey{video: video, epoch: s.epochs[video], sot: sot.ID, retiles: sot.Retiles}
	if e := s.leases[k]; e != nil {
		e.dir = dst
		e.dead = true
	}
	s.leaseMu.Unlock()
	return dst, nil
}
