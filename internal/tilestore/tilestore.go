// Package tilestore manages TASM's physical video storage (paper §3.4.5):
// each tile is a separate, independently decodable video file, grouped into
// per-SOT directories named after the paper's Figure 1 frames_<a>-<b>
// convention, with a .r<N> version suffix once a SOT has been re-tiled:
//
//	root/
//	  traffic/
//	    manifest.json
//	    frames_0-29/tile0.tsv            (version 0, as ingested)
//	    frames_30-59.r2/tile0.tsv ...    (version 2, after two re-tiles)
//
// The store is multi-version (MVCC): a SOT's physical layout is immutable
// per version. Re-tiling writes the new tiles into a fresh version
// directory and flips the manifest; it never overwrites tile files in
// place. Readers pin the exact versions their catalog snapshot names by
// holding read leases (Snapshot / AcquireSOT), and a superseded version's
// directory is garbage-collected only once the last lease on it is
// released. This is what lets Scan run truly concurrently with RetileSOT:
// a scan holding a lease always reads the tile files of the layout it
// planned against, no matter how many re-tiles commit underneath it.
//
// Stores written before directories were versioned (every version named
// frames_<a>-<b> regardless of the manifest's retile counter) remain
// readable: version resolution falls back to the unversioned name, and the
// first re-tile of such a SOT migrates it to a versioned directory.
package tilestore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/fsio"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// castagnoli is the CRC32C polynomial table used for every integrity
// checksum the store writes (tile files, manifests, version sidecars).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SOTMeta describes one sequence of tiles: a frame range sharing a layout.
type SOTMeta struct {
	ID   int           `json:"id"`
	From int           `json:"from"` // first frame (inclusive)
	To   int           `json:"to"`   // last frame (exclusive)
	L    layout.Layout `json:"layout"`
	// Retiles counts how many times this SOT has been re-encoded. It is
	// also the SOT's storage version: tiles live in frames_<a>-<b> when 0
	// and frames_<a>-<b>.r<Retiles> afterwards.
	Retiles int `json:"retiles"`
	// TileCRCs holds the CRC32C of each tile file's bytes, in layout
	// order, computed when the version was written. Reads verify a
	// tile against its checksum before decoding; nil (a store written
	// before checksums existed) skips verification.
	TileCRCs []uint32 `json:"tile_crcs,omitempty"`
}

// NumFrames returns the SOT's frame count.
func (s SOTMeta) NumFrames() int { return s.To - s.From }

// VideoMeta is the catalog record for one stored video. The live-ingest
// fields (Live, Sealed, NextSOT, TrimmedTo, Retention) all omit when
// empty, so batch manifests written before live ingest existed parse
// and re-seal unchanged.
type VideoMeta struct {
	Name       string    `json:"name"`
	W          int       `json:"width"`
	H          int       `json:"height"`
	FPS        int       `json:"fps"`
	GOPLength  int       `json:"gop_length"`
	FrameCount int       `json:"frame_count"`
	SOTs       []SOTMeta `json:"sots"`
	// Live marks an append-mode video still accepting AppendSOT; Sealed
	// marks one that was live and has been converted to batch by
	// SealVideo. Both false on an ordinary batch ingest.
	Live   bool `json:"live,omitempty"`
	Sealed bool `json:"sealed,omitempty"`
	// NextSOT is the next SOT id AppendSOT will assign. Ids stay
	// monotonic even after retention trims leading SOTs, so a lease on
	// a trimmed SOT can never alias a later append's version.
	NextSOT int `json:"next_sot,omitempty"`
	// TrimmedTo is the first frame still stored: retention may have
	// aged out SOTs covering [0, TrimmedTo). Reads below it return no
	// data; FrameCount keeps counting absolute frame indices.
	TrimmedTo int `json:"trimmed_to,omitempty"`
	// Retention is the video's expiry policy, applied by TrimExpired;
	// nil keeps everything.
	Retention *RetentionPolicy `json:"retention,omitempty"`
	// Checksum is the manifest's own integrity seal: "crc32c:<hex>" of
	// the manifest JSON marshaled with this field empty. A manifest
	// whose bytes do not match its seal is reported corrupt instead of
	// silently driving reads with a torn catalog record. Empty on
	// stores written before checksums existed.
	Checksum string `json:"checksum,omitempty"`
}

// SOTForFrame returns the SOT containing the given frame index.
func (m *VideoMeta) SOTForFrame(frame int) (SOTMeta, bool) {
	i := sort.Search(len(m.SOTs), func(i int) bool { return m.SOTs[i].To > frame })
	if i >= len(m.SOTs) || frame < m.SOTs[i].From {
		return SOTMeta{}, false
	}
	return m.SOTs[i], true
}

// SOTsInRange returns the SOTs overlapping frames [from, to).
func (m *VideoMeta) SOTsInRange(from, to int) []SOTMeta {
	var out []SOTMeta
	for _, s := range m.SOTs {
		if s.From < to && from < s.To {
			out = append(out, s)
		}
	}
	return out
}

// leaseKey identifies one leased SOT version. The epoch distinguishes
// same-named videos across DeleteVideo/re-ingest cycles, so a lease taken
// on a deleted video can never pin (or worse, reap) its successor's files.
type leaseKey struct {
	video   string
	epoch   uint64
	sot     int
	retiles int
}

// leaseEntry is the refcount for one leased version directory. dead marks
// versions superseded by a re-tile (or orphaned by DeleteVideo) whose
// directory must be removed when the last reference drops.
type leaseEntry struct {
	refs int
	dir  string
	dead bool
}

// Lease pins a set of SOT version directories against garbage collection.
// Release is idempotent and safe to defer; a nil *Lease releases nothing.
type Lease struct {
	s    *Store
	keys []leaseKey
	once sync.Once
}

// Release drops the lease's references. Any version directory the lease
// was the last reader of, and that has since been superseded, is removed.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.once.Do(func() {
		l.s.leaseMu.Lock()
		defer l.s.leaseMu.Unlock()
		l.s.releaseLocked(l.keys)
	})
}

// sotDir resolves the directory currently backing a leased SOT version,
// through the live lease table — not by path probing — so it stays
// correct even after DeleteVideo tombstones the directory into .trash.
func (l *Lease) sotDir(sot SOTMeta) (string, error) {
	if l == nil {
		return "", errors.New("tilestore: nil lease")
	}
	l.s.leaseMu.Lock()
	defer l.s.leaseMu.Unlock()
	for _, k := range l.keys {
		if k.sot != sot.ID || k.retiles != sot.Retiles {
			continue
		}
		if e := l.s.leases[k]; e != nil {
			return e.dir, nil
		}
	}
	return "", fmt.Errorf("tilestore: lease does not pin SOT %d version %d", sot.ID, sot.Retiles)
}

// ReadTile loads one tile stream of a leased SOT version. Unlike
// Store.ReadTile it cannot be redirected by concurrent re-tiles, deletes,
// or re-ingests: the lease pins the exact files of the caller's catalog
// snapshot.
func (l *Lease) ReadTile(sot SOTMeta, tileIdx int) (*container.Video, error) {
	if tileIdx < 0 || tileIdx >= sot.L.NumTiles() {
		return nil, fmt.Errorf("tilestore: tile %d out of range for SOT %d", tileIdx, sot.ID)
	}
	// DeleteVideo may tombstone-rename the directory between the path
	// lookup and the open; one retry re-reads the moved location.
	for attempt := 0; ; attempt++ {
		dir, err := l.sotDir(sot)
		if err != nil {
			return nil, err
		}
		tv, err := l.s.loadTile(dir, sot, tileIdx)
		if err == nil || attempt > 0 || !errors.Is(err, os.ErrNotExist) {
			return tv, err
		}
	}
}

// ReadAllTiles loads every tile stream of a leased SOT in layout order,
// honoring ctx between tile reads.
func (l *Lease) ReadAllTiles(ctx context.Context, sot SOTMeta) ([]*container.Video, error) {
	out := make([]*container.Video, sot.L.NumTiles())
	for i := range out {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tilestore: read SOT %d tiles: %w", sot.ID, err)
		}
		tv, err := l.ReadTile(sot, i)
		if err != nil {
			return nil, err
		}
		out[i] = tv
	}
	return out, nil
}

// Store is a directory of stored videos. Methods are safe for concurrent
// use; readers that must observe a frozen physical layout across multiple
// calls hold a Lease (see Snapshot).
//
// Locking: mu is the catalog lock — writers (CreateVideo, ReplaceSOT,
// DeleteVideo, GC) hold it exclusively, snapshot/lease acquisition holds it
// shared, so concurrent scan starts no longer serialize on each other.
// leaseMu guards the lease refcount table and delete epochs and nests
// inside mu (mu → leaseMu, never the reverse); Lease.Release takes only
// leaseMu, so dropping a lease never contends with the catalog. manMu
// guards the parsed-manifest cache, which turns the per-snapshot
// manifest.json read — previously a file read and JSON parse under the
// exclusive lock on every request — into a map lookup.
type Store struct {
	mu   sync.RWMutex
	root string

	// fs is the filesystem seam every store mutation and read goes
	// through: the real filesystem with fsync discipline by default,
	// or a fault-injecting fsio.MemFS under crash tests (WithFS).
	fs fsio.FS

	// unlock releases the cross-process ownership lease; nil when the
	// store was opened without one (the default for direct library use —
	// core.Open passes WithLock).
	unlock func() error

	// corruptTiles counts tile reads that failed checksum or parse
	// verification; recoverySweeps counts crash-recovery sweeps run by
	// Open. Both feed tasmd's /metrics endpoint.
	corruptTiles   atomic.Uint64
	recoverySweeps atomic.Uint64

	leaseMu sync.Mutex
	leases  map[leaseKey]*leaseEntry
	epochs  map[string]uint64 // bumped by DeleteVideo; never reset

	manMu     sync.Mutex
	manifests map[string]VideoMeta // parsed manifest.json cache
}

// lockFileName is the cross-process ownership lease file under the
// store root. It is a regular file, so the catalog walk (which skips
// non-directories) and fsck never mistake it for a video.
const lockFileName = ".lock"

// OpenOption configures Open.
type OpenOption func(*openConfig)

type openConfig struct {
	lock bool
	fs   fsio.FS
}

// WithLock makes Open acquire the store's cross-process ownership
// lease (an exclusive flock on <root>/.lock). A second locked Open of
// the same directory — another process, or even this one — fails fast
// with tasmerr.ErrStoreLocked instead of reading caches the owner is
// about to invalidate. Release it with Close.
func WithLock() OpenOption {
	return func(c *openConfig) { c.lock = true }
}

// WithFS routes every filesystem operation of the store through fs
// instead of the real filesystem — the seam crash tests use to open a
// store on a fault-injecting fsio.MemFS. Incompatible with WithLock,
// whose flock is inherently an OS-level construct.
func WithFS(fs fsio.FS) OpenOption {
	return func(c *openConfig) { c.fs = fs }
}

// Open creates (if needed) and opens a store rooted at dir, then runs
// a crash-recovery sweep: staging directories, manifest temp files,
// tombstones, and manifest-less video directories left by a crash are
// removed, so a store that lost power mid-write comes back FSCK-clean.
func Open(dir string, opts ...OpenOption) (*Store, error) {
	cfg := openConfig{fs: fsio.OS{}}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Store{
		root:      dir,
		fs:        cfg.fs,
		leases:    map[leaseKey]*leaseEntry{},
		epochs:    map[string]uint64{},
		manifests: map[string]VideoMeta{},
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.lock {
		release, err := acquireLock(dir)
		if err != nil {
			return nil, err
		}
		s.unlock = release
	}
	if err := s.recoverSweep(); err != nil {
		s.Close()
		return nil, fmt.Errorf("tilestore: recovery sweep: %w", err)
	}
	return s, nil
}

// recoverSweep removes debris a crash can leave behind: .staging
// working copies and manifest.json.tmp files whose commit never
// happened, tombstoned version directories in .trash (no lease can
// outlive the process that held it), and video directories without a
// manifest — a CreateVideo that never reached its commit point, or a
// DeleteVideo that passed it. It runs once per Open, before any reads,
// and is deliberately conservative: directories holding anything the
// store did not write are left alone.
func (s *Store) recoverSweep() error {
	entries, err := s.fs.ReadDir(s.root)
	if err != nil {
		return err
	}
	swept := false
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		p := filepath.Join(s.root, name)
		if name == trashDirName {
			if err := s.fs.RemoveAll(p); err != nil {
				return err
			}
			swept = true
			continue
		}
		vents, err := s.fs.ReadDir(p)
		if err != nil {
			return err
		}
		hasManifest, foreign := false, false
		for _, ve := range vents {
			base := ve.Name()
			vp := filepath.Join(p, base)
			switch {
			case base == "manifest.json":
				hasManifest = true
			case base == "manifest.json.tmp":
				if err := s.fs.Remove(vp); err != nil {
					return err
				}
				swept = true
			case strings.HasSuffix(base, ".staging") && sotDirPattern.MatchString(base):
				if err := s.fs.RemoveAll(vp); err != nil {
					return err
				}
				swept = true
			case sotDirPattern.MatchString(base):
				// A committed or half-flipped version directory; keep it.
				// If the manifest references it, it is live; otherwise it
				// is an orphan for GC (and a fallback for Repair).
			default:
				foreign = true
			}
		}
		if !hasManifest && !foreign {
			if err := s.fs.RemoveAll(p); err != nil {
				return err
			}
			swept = true
		}
	}
	if swept {
		if err := s.fs.SyncDir(s.root); err != nil {
			return err
		}
	}
	s.recoverySweeps.Add(1)
	return nil
}

// Metrics is a snapshot of the store's durability counters.
type Metrics struct {
	// CorruptTiles counts tile reads rejected by checksum or parse
	// verification since the store was opened.
	CorruptTiles uint64
	// RecoverySweeps counts crash-recovery sweeps run by Open.
	RecoverySweeps uint64
}

// Metrics returns the store's durability counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		CorruptTiles:   s.corruptTiles.Load(),
		RecoverySweeps: s.recoverySweeps.Load(),
	}
}

// Close releases the store's cross-process ownership lease (when one
// was taken). It does not wait for read leases: callers above this
// layer stop serving before closing. Close is idempotent.
func (s *Store) Close() error {
	if s.unlock == nil {
		return nil
	}
	unlock := s.unlock
	s.unlock = nil
	return unlock()
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) videoDir(name string) string { return filepath.Join(s.root, name) }

// sotDirName is the canonical directory name for a SOT version: the
// paper's frames_<a>-<b> for version 0, frames_<a>-<b>.r<N> afterwards.
func sotDirName(m SOTMeta) string {
	if m.Retiles == 0 {
		return fmt.Sprintf("frames_%d-%d", m.From, m.To-1)
	}
	return fmt.Sprintf("frames_%d-%d.r%d", m.From, m.To-1, m.Retiles)
}

func legacyDirName(m SOTMeta) string { return fmt.Sprintf("frames_%d-%d", m.From, m.To-1) }

func (s *Store) sotDir(video string, m SOTMeta) string {
	return filepath.Join(s.videoDir(video), sotDirName(m))
}

// resolveSOTDir locates the directory holding a SOT version's tiles,
// falling back to the legacy unversioned name for stores written before
// directories were versioned (manifest says Retiles > 0 but the tiles
// still live under frames_<a>-<b>).
func (s *Store) resolveSOTDir(video string, m SOTMeta) (string, error) {
	dir := s.sotDir(video, m)
	if _, err := s.fs.Stat(dir); err == nil {
		return dir, nil
	}
	if m.Retiles > 0 {
		legacy := filepath.Join(s.videoDir(video), legacyDirName(m))
		if _, err := s.fs.Stat(legacy); err == nil {
			return legacy, nil
		}
	}
	return "", fmt.Errorf("tilestore: video %q SOT %d version %d: no tile directory", video, m.ID, m.Retiles)
}

func tileFileName(i int) string { return fmt.Sprintf("tile%d.tsv", i) }

// trashDirName holds tombstoned version directories: files of deleted
// videos still pinned by read leases, moved out of the video directory so
// a re-ingest under the same name can never collide with them.
const trashDirName = ".trash"

// validName rejects names that would escape the store directory or
// collide with the store's own bookkeeping entries.
func validName(name string) error {
	if name == "" || name == "." || name == ".." || name[0] == '.' {
		return fmt.Errorf("tilestore: %w: %q", tasmerr.ErrInvalidName, name)
	}
	if filepath.Base(name) != name {
		return fmt.Errorf("tilestore: %w: %q contains a path separator", tasmerr.ErrInvalidName, name)
	}
	return nil
}

// CreateVideo registers a new video and writes the tiles of each SOT. The
// lengths of sotTiles must match meta.SOTs, and each inner slice must match
// the SOT's layout tile count. On failure the video's directory is removed
// so a retried ingest starts fresh instead of tripping over half-written
// SOT directories or staging debris.
func (s *Store) CreateVideo(meta VideoMeta, sotTiles [][]*container.Video) (err error) {
	if err := validName(meta.Name); err != nil {
		return err
	}
	if len(sotTiles) != len(meta.SOTs) {
		return fmt.Errorf("tilestore: %d tile sets for %d SOTs", len(sotTiles), len(meta.SOTs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.videoDir(meta.Name)
	if _, err := s.fs.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return fmt.Errorf("tilestore: %w: %q", tasmerr.ErrVideoExists, meta.Name)
	}
	defer func() {
		if err != nil {
			s.fs.RemoveAll(dir)
		}
	}()
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Work on a private SOT slice: the tile checksums computed below
	// belong to the committed catalog record, not the caller's copy.
	meta.SOTs = append([]SOTMeta(nil), meta.SOTs...)
	for i, sot := range meta.SOTs {
		crcs, err := s.writeSOTDir(meta.Name, sot, sotTiles[i])
		if err != nil {
			return err
		}
		meta.SOTs[i].TileCRCs = crcs
	}
	if err := s.writeManifest(meta); err != nil {
		return err
	}
	// Commit point: the video directory entry itself becomes durable.
	return s.fs.SyncDir(s.root)
}

// tileSidecar records a version directory's own description —
// enough for Repair to re-adopt the version after the manifest moved
// on — and is written into every version directory as tiles.json.
type tileSidecar struct {
	From     int           `json:"from"`
	To       int           `json:"to"`
	L        layout.Layout `json:"layout"`
	TileCRCs []uint32      `json:"tile_crcs"`
}

// sidecarFileName is the per-version sidecar within a version dir.
const sidecarFileName = "tiles.json"

func (s *Store) readSidecar(dir string) (tileSidecar, error) {
	var side tileSidecar
	data, err := s.fs.ReadFile(filepath.Join(dir, sidecarFileName))
	if err != nil {
		return side, err
	}
	if err := json.Unmarshal(data, &side); err != nil {
		return side, fmt.Errorf("tilestore: %s: corrupt sidecar: %w", dir, err)
	}
	return side, nil
}

// writeSOTDir writes a SOT version directory with full commit
// discipline — every tile and the sidecar written and synced into a
// .staging copy, the staging directory synced, renamed over the final
// name, and the parent directory synced — and returns the CRC32C of
// each tile file for the manifest. A crash at any point leaves either
// the previous state or the complete new version, never a torn one.
func (s *Store) writeSOTDir(video string, sot SOTMeta, tiles []*container.Video) ([]uint32, error) {
	if len(tiles) != sot.L.NumTiles() {
		return nil, fmt.Errorf("tilestore: SOT %d has %d tiles for a %d-tile layout", sot.ID, len(tiles), sot.L.NumTiles())
	}
	dir := s.sotDir(video, sot)
	staging := dir + ".staging"
	if err := s.fs.RemoveAll(staging); err != nil {
		return nil, err
	}
	if err := s.fs.MkdirAll(staging, 0o755); err != nil {
		return nil, err
	}
	crcs := make([]uint32, len(tiles))
	for i, tv := range tiles {
		if tv.FrameCount() != sot.NumFrames() {
			s.fs.RemoveAll(staging)
			return nil, fmt.Errorf("tilestore: SOT %d tile %d has %d frames, want %d", sot.ID, i, tv.FrameCount(), sot.NumFrames())
		}
		data := tv.Bytes()
		crcs[i] = crc32.Checksum(data, castagnoli)
		path := filepath.Join(staging, tileFileName(i))
		if err := s.fs.WriteFile(path, data, 0o644); err != nil {
			s.fs.RemoveAll(staging)
			return nil, err
		}
		if err := s.fs.SyncFile(path); err != nil {
			s.fs.RemoveAll(staging)
			return nil, err
		}
	}
	side := tileSidecar{From: sot.From, To: sot.To, L: sot.L, TileCRCs: crcs}
	data, err := json.MarshalIndent(&side, "", "  ")
	if err != nil {
		s.fs.RemoveAll(staging)
		return nil, err
	}
	sidePath := filepath.Join(staging, sidecarFileName)
	if err := s.fs.WriteFile(sidePath, data, 0o644); err != nil {
		s.fs.RemoveAll(staging)
		return nil, err
	}
	if err := s.fs.SyncFile(sidePath); err != nil {
		s.fs.RemoveAll(staging)
		return nil, err
	}
	if err := s.fs.SyncDir(staging); err != nil {
		s.fs.RemoveAll(staging)
		return nil, err
	}
	if err := s.fs.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := s.fs.Rename(staging, dir); err != nil {
		return nil, err
	}
	return crcs, s.fs.SyncDir(s.videoDir(video))
}

// manifestChecksum seals a catalog record: the CRC32C of the manifest
// marshaled with its Checksum field empty.
func manifestChecksum(meta VideoMeta) (string, error) {
	meta.Checksum = ""
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(data, castagnoli)), nil
}

func (s *Store) writeManifest(meta VideoMeta) error {
	sum, err := manifestChecksum(meta)
	if err != nil {
		return err
	}
	meta.Checksum = sum
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.videoDir(meta.Name), "manifest.json")
	tmp := path + ".tmp"
	if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := s.fs.SyncFile(tmp); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.videoDir(meta.Name)); err != nil {
		return err
	}
	s.cacheManifest(meta)
	return nil
}

// cacheManifest installs a private copy of meta in the parsed-manifest
// cache (the SOT slice is copied; Layout internals are shared but never
// mutated in place — re-tiles replace whole SOTMeta values).
func (s *Store) cacheManifest(meta VideoMeta) {
	meta.SOTs = append([]SOTMeta(nil), meta.SOTs...)
	s.manMu.Lock()
	s.manifests[meta.Name] = meta
	s.manMu.Unlock()
}

// invalidateManifest drops a video's cached catalog record; the next read
// re-parses manifest.json (or reports the video gone).
func (s *Store) invalidateManifest(video string) {
	s.manMu.Lock()
	delete(s.manifests, video)
	s.manMu.Unlock()
}

// Meta returns the catalog record for a video. The record is a snapshot:
// to also pin the physical files it names, use Snapshot instead.
func (s *Store) Meta(video string) (VideoMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metaLocked(video)
}

// metaLocked returns the catalog record, serving from the in-memory
// manifest cache on the hot path. Callers hold mu (shared or exclusive),
// which orders reads against the writers that refresh or invalidate the
// cache. The returned record's SOT slice is a private copy.
func (s *Store) metaLocked(video string) (VideoMeta, error) {
	var meta VideoMeta
	if err := validName(video); err != nil {
		return meta, err
	}
	s.manMu.Lock()
	cached, ok := s.manifests[video]
	s.manMu.Unlock()
	if ok {
		cached.SOTs = append([]SOTMeta(nil), cached.SOTs...)
		return cached, nil
	}
	meta, err := s.metaFromDisk(video)
	if err != nil {
		return meta, err
	}
	s.cacheManifest(meta)
	return meta, nil
}

// metaFromDisk reads and parses manifest.json, bypassing the cache — the
// read GC and FSCK use, so an externally corrupted or deleted manifest is
// seen as it is on disk rather than masked by a cached copy.
func (s *Store) metaFromDisk(video string) (VideoMeta, error) {
	var meta VideoMeta
	data, err := s.fs.ReadFile(filepath.Join(s.videoDir(video), "manifest.json"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return meta, fmt.Errorf("tilestore: %w: %q", tasmerr.ErrVideoNotFound, video)
		}
		return meta, fmt.Errorf("tilestore: video %q: %w", video, err)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("tilestore: video %q: corrupt manifest: %w", video, err)
	}
	if meta.Checksum != "" {
		sum, err := manifestChecksum(meta)
		if err != nil {
			return meta, err
		}
		if sum != meta.Checksum {
			return VideoMeta{}, fmt.Errorf("tilestore: video %q: corrupt manifest: checksum %s, sealed %s", video, sum, meta.Checksum)
		}
	}
	return meta, nil
}

// Snapshot atomically reads a video's catalog record and acquires read
// leases on the live version of every SOT it names. Until the lease is
// released, those versions' tile files stay on disk even if the SOTs are
// re-tiled or the video deleted, so the caller reads exactly the layout
// the snapshot describes.
func (s *Store) Snapshot(video string) (VideoMeta, *Lease, error) {
	return s.snapshot(context.Background(), video, 0, -1)
}

// SnapshotContext is Snapshot under a context: a done context fails the
// acquisition before any lease is taken, so no release is owed.
func (s *Store) SnapshotContext(ctx context.Context, video string) (VideoMeta, *Lease, error) {
	return s.snapshot(ctx, video, 0, -1)
}

// SnapshotRange is Snapshot restricted to the SOTs overlapping the frame
// range [from, to) after clamping it to the video (from < 0 becomes 0;
// to < 0 or past the end becomes the frame count) — what Scan and
// DecodeFrames use so a narrow query does not pin (or pay a stat for)
// every SOT of a long video.
func (s *Store) SnapshotRange(video string, from, to int) (VideoMeta, *Lease, error) {
	return s.snapshot(context.Background(), video, from, to)
}

// SnapshotRangeContext is SnapshotRange under a context.
func (s *Store) SnapshotRangeContext(ctx context.Context, video string, from, to int) (VideoMeta, *Lease, error) {
	return s.snapshot(ctx, video, from, to)
}

// snapshot runs under the shared catalog lock: concurrent snapshots
// proceed in parallel (the manifest comes from the in-memory cache and the
// lease table has its own mutex), while the exclusive writers —
// ReplaceSOT, DeleteVideo, CreateVideo, GC — are excluded, which is what
// makes the meta read plus lease acquisition atomic.
func (s *Store) snapshot(ctx context.Context, video string, from, to int) (VideoMeta, *Lease, error) {
	if err := ctx.Err(); err != nil {
		return VideoMeta{}, nil, fmt.Errorf("tilestore: snapshot %q: %w", video, err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return meta, nil, err
	}
	if from < 0 {
		from = 0
	}
	if to < 0 || to > meta.FrameCount {
		to = meta.FrameCount
	}
	l := &Lease{s: s}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	for _, sot := range meta.SOTs {
		if sot.From >= to || from >= sot.To {
			continue
		}
		k, err := s.acquireLocked(video, sot)
		if err != nil {
			s.releaseLocked(l.keys)
			return meta, nil, err
		}
		l.keys = append(l.keys, k)
	}
	return meta, l, nil
}

// AcquireSOT pins a single SOT version. The SOTMeta must come from a
// current catalog read; acquiring a version that has already been
// superseded and reaped returns an error (the caller should re-Snapshot).
func (s *Store) AcquireSOT(video string, sot SOTMeta) (*Lease, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	k, err := s.acquireLocked(video, sot)
	if err != nil {
		return nil, err
	}
	return &Lease{s: s, keys: []leaseKey{k}}, nil
}

// acquireLocked takes one read-lease reference; the caller holds leaseMu
// (and mu shared, to exclude the writers that retire versions).
func (s *Store) acquireLocked(video string, sot SOTMeta) (leaseKey, error) {
	k := leaseKey{video: video, epoch: s.epochs[video], sot: sot.ID, retiles: sot.Retiles}
	if e := s.leases[k]; e != nil {
		if e.dead {
			return k, fmt.Errorf("tilestore: %w: video %q SOT %d version %d was superseded", tasmerr.ErrRetileConflict, video, sot.ID, sot.Retiles)
		}
		e.refs++
		return k, nil
	}
	dir, err := s.resolveSOTDir(video, sot)
	if err != nil {
		return k, err
	}
	s.leases[k] = &leaseEntry{refs: 1, dir: dir}
	return k, nil
}

// releaseLocked drops lease references; the caller holds leaseMu.
func (s *Store) releaseLocked(keys []leaseKey) {
	for _, k := range keys {
		e := s.leases[k]
		if e == nil {
			continue
		}
		if e.refs--; e.refs > 0 {
			continue
		}
		delete(s.leases, k)
		if e.dead {
			s.removeDeadDirLocked(k, e.dir)
		}
	}
}

// removeDeadDirLocked reaps a superseded version directory. Dead dirs
// never collide with live data: a retired version keeps a name no future
// write reuses (retile counters only grow), and DeleteVideo tombstones
// leased dirs into .trash before the name can be re-ingested.
func (s *Store) removeDeadDirLocked(k leaseKey, dir string) {
	s.fs.RemoveAll(dir)
	// Reap the enclosing .trash/<video>.e<epoch>/ dir — and .trash itself
	// — once empty; Remove fails harmlessly while non-empty, and a
	// retired-in-place dir's parent (the video dir) still holds the
	// manifest.
	parent := filepath.Dir(dir)
	if s.fs.Remove(parent) == nil && filepath.Base(filepath.Dir(parent)) == trashDirName {
		s.fs.Remove(filepath.Dir(parent))
	}
}

// ListVideos returns the names of all stored videos, sorted.
func (s *Store) ListVideos() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := s.fs.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := s.fs.Stat(filepath.Join(s.root, e.Name(), "manifest.json")); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// loadTile reads, verifies, and parses one tile file of a version
// directory. A checksum mismatch or unparseable tile surfaces
// tasmerr.ErrTileCorrupt (and bumps the corrupt-tile counter); a
// missing file keeps wrapping os.ErrNotExist so lease retry logic and
// not-found classification still work.
func (s *Store) loadTile(dir string, sot SOTMeta, tileIdx int) (*container.Video, error) {
	path := filepath.Join(dir, tileFileName(tileIdx))
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if tileIdx < len(sot.TileCRCs) {
		if got := crc32.Checksum(data, castagnoli); got != sot.TileCRCs[tileIdx] {
			s.corruptTiles.Add(1)
			return nil, fmt.Errorf("tilestore: %w: %s: crc32c %08x, manifest says %08x", tasmerr.ErrTileCorrupt, path, got, sot.TileCRCs[tileIdx])
		}
	}
	tv, err := container.Parse(data)
	if err != nil {
		s.corruptTiles.Add(1)
		return nil, fmt.Errorf("tilestore: %w: %s: %v", tasmerr.ErrTileCorrupt, path, err)
	}
	return tv, nil
}

// ReadTile loads one tile stream of a SOT version, verifying its
// checksum when the catalog record carries one. Tile files are never
// rewritten in place, so the read needs no lock; callers that must keep
// the version on disk across several reads hold a Lease on it.
func (s *Store) ReadTile(video string, sot SOTMeta, tileIdx int) (*container.Video, error) {
	if tileIdx < 0 || tileIdx >= sot.L.NumTiles() {
		return nil, fmt.Errorf("tilestore: tile %d out of range for SOT %d", tileIdx, sot.ID)
	}
	dir, err := s.resolveSOTDir(video, sot)
	if err != nil {
		return nil, err
	}
	return s.loadTile(dir, sot, tileIdx)
}

// ReadAllTiles loads every tile stream of a SOT in layout order.
func (s *Store) ReadAllTiles(video string, sot SOTMeta) ([]*container.Video, error) {
	out := make([]*container.Video, sot.L.NumTiles())
	for i := range out {
		tv, err := s.ReadTile(video, sot, i)
		if err != nil {
			return nil, err
		}
		out[i] = tv
	}
	return out, nil
}

// ReplaceSOT swaps a SOT's tiles for a new layout by writing a fresh
// version directory and flipping the manifest; the old version's files are
// untouched until every lease on them is released, then reaped. The new
// tiles must match newLayout and the SOT's frame count.
func (s *Store) ReplaceSOT(video string, sotID int, newLayout layout.Layout, tiles []*container.Video) error {
	return s.replaceSOT(video, sotID, newLayout, tiles, nil)
}

// ReplaceSOTLeased is ReplaceSOT with a write-time validity check against
// the snapshot the new tiles were produced from: if the video was deleted
// (and possibly re-ingested) or the SOT re-tiled since the lease was
// taken, the replace is refused instead of committing tiles encoded from
// a stale — or entirely different — video's frames.
func (s *Store) ReplaceSOTLeased(lease *Lease, video string, sotID int, newLayout layout.Layout, tiles []*container.Video) error {
	if lease == nil {
		return errors.New("tilestore: ReplaceSOTLeased requires a lease")
	}
	return s.replaceSOT(video, sotID, newLayout, tiles, lease)
}

func (s *Store) replaceSOT(video string, sotID int, newLayout layout.Layout, tiles []*container.Video, lease *Lease) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return err
	}
	idx := -1
	for i, sot := range meta.SOTs {
		if sot.ID == sotID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("tilestore: %w: video %q has no SOT %d", tasmerr.ErrSOTNotFound, video, sotID)
	}
	oldSOT := meta.SOTs[idx]
	if lease != nil {
		if err := s.validateLeasePin(lease, video, sotID, oldSOT.Retiles); err != nil {
			return err
		}
	}
	oldDir, oldDirErr := s.resolveSOTDir(video, oldSOT)
	newSOT := oldSOT
	newSOT.L = newLayout
	newSOT.Retiles++
	crcs, err := s.writeSOTDir(video, newSOT, tiles)
	if err != nil {
		return err
	}
	newSOT.TileCRCs = crcs
	meta.SOTs[idx] = newSOT
	if err := s.writeManifest(meta); err != nil {
		return err
	}
	if oldDirErr == nil {
		s.retireLocked(video, oldSOT, oldDir)
	}
	return nil
}

// validateLeasePin checks that a commit's snapshot lease still pins the
// SOT version the live catalog names, classifying the mismatch: the video
// was deleted/re-ingested (epoch moved), the SOT was re-tiled by someone
// else (version moved), or the snapshot never pinned the SOT at all.
func (s *Store) validateLeasePin(lease *Lease, video string, sotID, retiles int) error {
	s.leaseMu.Lock()
	epoch := s.epochs[video]
	s.leaseMu.Unlock()
	for _, k := range lease.keys {
		if k.sot != sotID {
			continue
		}
		if k.epoch != epoch {
			return fmt.Errorf("tilestore: %w: video %q was deleted (and possibly re-ingested) since the snapshot was taken; not replacing SOT %d", tasmerr.ErrVideoDeleted, video, sotID)
		}
		if k.retiles != retiles {
			return fmt.Errorf("tilestore: %w: video %q SOT %d was re-tiled since the snapshot was taken; not replacing", tasmerr.ErrRetileConflict, video, sotID)
		}
		return nil
	}
	return fmt.Errorf("tilestore: %w: the snapshot does not pin video %q SOT %d; not replacing", tasmerr.ErrRetileConflict, video, sotID)
}

// retireLocked schedules a superseded version directory for removal: now
// if no reader holds a lease on it, otherwise when the last lease drops.
// The caller holds mu exclusively.
func (s *Store) retireLocked(video string, sot SOTMeta, dir string) {
	s.leaseMu.Lock()
	k := leaseKey{video: video, epoch: s.epochs[video], sot: sot.ID, retiles: sot.Retiles}
	if e := s.leases[k]; e != nil && e.refs > 0 {
		e.dead = true
		e.dir = dir
		s.leaseMu.Unlock()
		return
	}
	s.leaseMu.Unlock()
	s.fs.RemoveAll(dir)
}

// VideoBytes returns the total on-disk size of a video's live tile files,
// the storage-cost metric in Figure 9. The walk runs under a snapshot
// lease, so a concurrent re-tile can neither skew the sum nor pull files
// out from under it.
func (s *Store) VideoBytes(video string) (int64, error) {
	meta, lease, err := s.Snapshot(video)
	if err != nil {
		return 0, err
	}
	defer lease.Release()
	var total int64
	for _, sot := range meta.SOTs {
		dir, err := lease.sotDir(sot)
		if err != nil {
			return 0, err
		}
		for i := 0; i < sot.L.NumTiles(); i++ {
			st, err := s.fs.Stat(filepath.Join(dir, tileFileName(i)))
			if errors.Is(err, os.ErrNotExist) {
				// A concurrent DeleteVideo may have tombstone-renamed the
				// leased dir; re-resolve through the lease table and retry.
				if dir, err = lease.sotDir(sot); err == nil {
					st, err = s.fs.Stat(filepath.Join(dir, tileFileName(i)))
				}
			}
			if err != nil {
				return 0, err
			}
			total += st.Size()
		}
	}
	return total, nil
}

// DeleteVideo removes a video: its manifest and every version directory
// no reader is leasing, immediately. Leased version directories are
// tombstoned — moved into .trash/<video>.e<epoch>/ — so in-flight scans
// finish reading the exact files they pinned while the video's directory
// becomes immediately reusable: a re-ingest under the same name can never
// collide with (or be clobbered into) the deleted generation's files.
// Tombstones are reaped when their leases drop, or by GC after a crash.
func (s *Store) DeleteVideo(video string) error {
	if err := validName(video); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.videoDir(video)
	if _, err := s.fs.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tilestore: %w: %q", tasmerr.ErrVideoNotFound, video)
	}
	s.invalidateManifest(video)
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	// Phase 1: move every leased version dir into the tombstone area. Only
	// after all renames succeed is anything marked dead or the epoch
	// bumped, so a failed rename rolls back to a fully live video instead
	// of leaving some versions doomed to be reaped on lease release.
	trash := filepath.Join(s.root, trashDirName, fmt.Sprintf("%s.e%d", video, s.epochs[video]))
	type move struct {
		e        *leaseEntry
		from, to string
	}
	var moves []move
	// rollback restores the tombstoned dirs; its own failures are
	// collected and surfaced, not swallowed — a half-renamed video is an
	// integrity event the caller must hear about, because until the
	// leases drop those versions read from .trash and GC will not
	// reclaim them.
	rollback := func() error {
		var errs []error
		for _, mv := range moves {
			if err := s.fs.Rename(mv.to, mv.from); err != nil {
				errs = append(errs, fmt.Errorf("restore %s: %w", mv.from, err))
			}
		}
		s.fs.Remove(trash)
		s.fs.Remove(filepath.Dir(trash))
		return errors.Join(errs...)
	}
	fail := func(err error) error {
		if rbErr := rollback(); rbErr != nil {
			return fmt.Errorf("tilestore: delete %q: %w (rollback failed, tombstoned versions left under %s: %v)", video, err, trash, rbErr)
		}
		return err
	}
	for k, e := range s.leases {
		if k.video != video || e.refs == 0 || !strings.HasPrefix(e.dir, dir+string(filepath.Separator)) {
			continue
		}
		if err := s.fs.MkdirAll(trash, 0o755); err != nil {
			return fail(err)
		}
		moved := filepath.Join(trash, filepath.Base(e.dir))
		if err := s.fs.Rename(e.dir, moved); err != nil {
			return fail(err)
		}
		moves = append(moves, move{e, e.dir, moved})
	}
	// Make the tombstones durable before the commit point, so a crash
	// between the two cannot lose leased version directories: until the
	// manifest removal below is synced, the renames revert on power
	// loss and the video comes back fully live.
	if len(moves) > 0 {
		for _, p := range []string{trash, filepath.Dir(trash), s.root} {
			if err := s.fs.SyncDir(p); err != nil {
				return fail(err)
			}
		}
	}
	// Phase 2: commit — durably retire the catalog record FIRST, so no
	// crash can leave a manifest naming version directories that were
	// already removed. Then retarget the leases at the tombstones, mark
	// them dead, retire the name, and remove the rest.
	if err := s.fs.Remove(filepath.Join(dir, "manifest.json")); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fail(err)
	}
	for _, mv := range moves {
		mv.e.dir = mv.to
		mv.e.dead = true
	}
	s.epochs[video]++
	var errs []error
	// Syncing the video dir commits both the manifest removal and the
	// tombstone renames out of it in one step.
	if err := s.fs.SyncDir(dir); err != nil {
		errs = append(errs, err)
	}
	if err := s.fs.RemoveAll(dir); err != nil {
		errs = append(errs, err)
	}
	if err := s.fs.SyncDir(s.root); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
