// Package tilestore manages TASM's physical video storage (paper §3.4.5):
// each tile is a separate, independently decodable video file, grouped into
// per-SOT directories named frames_<from>-<to> exactly as the paper's
// Figure 1 shows:
//
//	root/
//	  traffic/
//	    manifest.json
//	    frames_0-29/tile0.tsv
//	    frames_30-59/tile0.tsv tile1.tsv ...
//
// Re-tiling a SOT writes the new tiles into a staging directory and renames
// it into place, so readers never observe a half-written layout.
package tilestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/layout"
)

// SOTMeta describes one sequence of tiles: a frame range sharing a layout.
type SOTMeta struct {
	ID   int           `json:"id"`
	From int           `json:"from"` // first frame (inclusive)
	To   int           `json:"to"`   // last frame (exclusive)
	L    layout.Layout `json:"layout"`
	// Retiles counts how many times this SOT has been re-encoded.
	Retiles int `json:"retiles"`
}

// NumFrames returns the SOT's frame count.
func (s SOTMeta) NumFrames() int { return s.To - s.From }

// VideoMeta is the catalog record for one stored video.
type VideoMeta struct {
	Name       string    `json:"name"`
	W          int       `json:"width"`
	H          int       `json:"height"`
	FPS        int       `json:"fps"`
	GOPLength  int       `json:"gop_length"`
	FrameCount int       `json:"frame_count"`
	SOTs       []SOTMeta `json:"sots"`
}

// SOTForFrame returns the SOT containing the given frame index.
func (m *VideoMeta) SOTForFrame(frame int) (SOTMeta, bool) {
	i := sort.Search(len(m.SOTs), func(i int) bool { return m.SOTs[i].To > frame })
	if i >= len(m.SOTs) || frame < m.SOTs[i].From {
		return SOTMeta{}, false
	}
	return m.SOTs[i], true
}

// SOTsInRange returns the SOTs overlapping frames [from, to).
func (m *VideoMeta) SOTsInRange(from, to int) []SOTMeta {
	var out []SOTMeta
	for _, s := range m.SOTs {
		if s.From < to && from < s.To {
			out = append(out, s)
		}
	}
	return out
}

// Store is a directory of stored videos. Methods are safe for concurrent
// use.
type Store struct {
	mu   sync.RWMutex
	root string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) videoDir(name string) string { return filepath.Join(s.root, name) }

func sotDirName(m SOTMeta) string { return fmt.Sprintf("frames_%d-%d", m.From, m.To-1) }

func (s *Store) sotDir(video string, m SOTMeta) string {
	return filepath.Join(s.videoDir(video), sotDirName(m))
}

func tileFileName(i int) string { return fmt.Sprintf("tile%d.tsv", i) }

// validName rejects names that would escape the store directory.
func validName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("tilestore: invalid video name %q", name)
	}
	if filepath.Base(name) != name {
		return fmt.Errorf("tilestore: video name %q contains a path separator", name)
	}
	return nil
}

// CreateVideo registers a new video and writes the tiles of each SOT. The
// lengths of sotTiles must match meta.SOTs, and each inner slice must match
// the SOT's layout tile count.
func (s *Store) CreateVideo(meta VideoMeta, sotTiles [][]*container.Video) error {
	if err := validName(meta.Name); err != nil {
		return err
	}
	if len(sotTiles) != len(meta.SOTs) {
		return fmt.Errorf("tilestore: %d tile sets for %d SOTs", len(sotTiles), len(meta.SOTs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.videoDir(meta.Name)
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return fmt.Errorf("tilestore: video %q already exists", meta.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, sot := range meta.SOTs {
		if err := s.writeSOTDir(meta.Name, sot, sotTiles[i]); err != nil {
			return err
		}
	}
	return s.writeManifest(meta)
}

func (s *Store) writeSOTDir(video string, sot SOTMeta, tiles []*container.Video) error {
	if len(tiles) != sot.L.NumTiles() {
		return fmt.Errorf("tilestore: SOT %d has %d tiles for a %d-tile layout", sot.ID, len(tiles), sot.L.NumTiles())
	}
	dir := s.sotDir(video, sot)
	staging := dir + ".staging"
	if err := os.RemoveAll(staging); err != nil {
		return err
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return err
	}
	for i, tv := range tiles {
		if tv.FrameCount() != sot.NumFrames() {
			return fmt.Errorf("tilestore: SOT %d tile %d has %d frames, want %d", sot.ID, i, tv.FrameCount(), sot.NumFrames())
		}
		if err := tv.Save(filepath.Join(staging, tileFileName(i))); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.Rename(staging, dir)
}

func (s *Store) writeManifest(meta VideoMeta) error {
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.videoDir(meta.Name), "manifest.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Meta returns the catalog record for a video.
func (s *Store) Meta(video string) (VideoMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metaLocked(video)
}

func (s *Store) metaLocked(video string) (VideoMeta, error) {
	var meta VideoMeta
	if err := validName(video); err != nil {
		return meta, err
	}
	data, err := os.ReadFile(filepath.Join(s.videoDir(video), "manifest.json"))
	if err != nil {
		return meta, fmt.Errorf("tilestore: video %q: %w", video, err)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("tilestore: video %q: corrupt manifest: %w", video, err)
	}
	return meta, nil
}

// ListVideos returns the names of all stored videos, sorted.
func (s *Store) ListVideos() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.root, e.Name(), "manifest.json")); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReadTile loads one tile stream of a SOT.
func (s *Store) ReadTile(video string, sot SOTMeta, tileIdx int) (*container.Video, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tileIdx < 0 || tileIdx >= sot.L.NumTiles() {
		return nil, fmt.Errorf("tilestore: tile %d out of range for SOT %d", tileIdx, sot.ID)
	}
	return container.Open(filepath.Join(s.sotDir(video, sot), tileFileName(tileIdx)))
}

// ReadAllTiles loads every tile stream of a SOT in layout order.
func (s *Store) ReadAllTiles(video string, sot SOTMeta) ([]*container.Video, error) {
	out := make([]*container.Video, sot.L.NumTiles())
	for i := range out {
		tv, err := s.ReadTile(video, sot, i)
		if err != nil {
			return nil, err
		}
		out[i] = tv
	}
	return out, nil
}

// ReplaceSOT atomically swaps a SOT's tiles for a new layout, updating the
// manifest. The new tiles must match newLayout and the SOT's frame count.
func (s *Store) ReplaceSOT(video string, sotID int, newLayout layout.Layout, tiles []*container.Video) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return err
	}
	idx := -1
	for i, sot := range meta.SOTs {
		if sot.ID == sotID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("tilestore: video %q has no SOT %d", video, sotID)
	}
	newSOT := meta.SOTs[idx]
	newSOT.L = newLayout
	newSOT.Retiles++
	if err := s.writeSOTDir(video, newSOT, tiles); err != nil {
		return err
	}
	meta.SOTs[idx] = newSOT
	return s.writeManifest(meta)
}

// VideoBytes returns the total on-disk size of a video's tile files, the
// storage-cost metric in Figure 9.
func (s *Store) VideoBytes(video string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	meta, err := s.metaLocked(video)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, sot := range meta.SOTs {
		dir := s.sotDir(video, sot)
		for i := 0; i < sot.L.NumTiles(); i++ {
			st, err := os.Stat(filepath.Join(dir, tileFileName(i)))
			if err != nil {
				return 0, err
			}
			total += st.Size()
		}
	}
	return total, nil
}

// DeleteVideo removes a video and all its tiles.
func (s *Store) DeleteVideo(video string) error {
	if err := validName(video); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.videoDir(video)
	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tilestore: video %q does not exist", video)
	}
	return os.RemoveAll(dir)
}
