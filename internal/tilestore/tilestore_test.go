package tilestore

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

func makeFrames(w, h, n, shift int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		f := frame.New(w, h)
		f.Fill(byte(40+i), 128, 128)
		f.FillRect(geom.R(shift+2*i, 8, shift+2*i+20, 28), 220, 90, 170)
		out[i] = f
	}
	return out
}

func cons(w, h int) layout.Constraints {
	return layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
}

func params() vcodec.Params {
	p := vcodec.DefaultParams()
	p.GOPLength = 10
	return p
}

// buildVideo creates a 2-SOT test video: SOT 0 untiled, SOT 1 with a 2x2
// layout.
func buildVideo(t *testing.T, s *Store, name string) VideoMeta {
	t.Helper()
	w, h := 128, 96
	l22, err := layout.Uniform(2, 2, cons(w, h))
	if err != nil {
		t.Fatal(err)
	}
	meta := VideoMeta{
		Name: name, W: w, H: h, FPS: 10, GOPLength: 10, FrameCount: 20,
		SOTs: []SOTMeta{
			{ID: 0, From: 0, To: 10, L: layout.Single(w, h)},
			{ID: 1, From: 10, To: 20, L: l22},
		},
	}
	f0 := makeFrames(w, h, 10, 0)
	f1 := makeFrames(w, h, 10, 30)
	t0, err := container.EncodeTiled(f0, meta.SOTs[0].L, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := container.EncodeTiled(f1, meta.SOTs[1].L, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateVideo(meta, [][]*container.Video{t0, t1}); err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestCreateAndMeta(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := buildVideo(t, s, "traffic")
	got, err := s.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "traffic" || got.FrameCount != 20 || len(got.SOTs) != 2 {
		t.Errorf("meta = %+v", got)
	}
	if !got.SOTs[1].L.Equal(meta.SOTs[1].L) {
		t.Error("layout did not round trip through manifest")
	}
	// Directory naming matches the paper's frames_a-b convention.
	if _, err := os.Stat(filepath.Join(s.Root(), "traffic", "frames_0-9", "tile0.tsv")); err != nil {
		t.Errorf("expected frames_0-9/tile0.tsv: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "traffic", "frames_10-19", "tile3.tsv")); err != nil {
		t.Errorf("expected frames_10-19/tile3.tsv: %v", err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	w, h := 128, 96
	meta := VideoMeta{Name: "v", W: w, H: h, FPS: 10, GOPLength: 10, FrameCount: 10,
		SOTs: []SOTMeta{{ID: 0, From: 0, To: 10, L: layout.Single(w, h)}}}
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), meta.SOTs[0].L, 10, params())
	if err := s.CreateVideo(meta, [][]*container.Video{tiles}); err == nil {
		t.Error("duplicate create succeeded")
	}
}

func TestValidation(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.CreateVideo(VideoMeta{Name: "../evil"}, nil); err == nil {
		t.Error("path traversal accepted")
	}
	if err := s.CreateVideo(VideoMeta{Name: ""}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.Meta("absent"); err == nil {
		t.Error("absent video Meta succeeded")
	}
	if err := s.DeleteVideo("absent"); err == nil {
		t.Error("absent video Delete succeeded")
	}
}

func TestSOTLookups(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	if sot, ok := meta.SOTForFrame(5); !ok || sot.ID != 0 {
		t.Errorf("SOTForFrame(5) = %+v %v", sot, ok)
	}
	if sot, ok := meta.SOTForFrame(15); !ok || sot.ID != 1 {
		t.Errorf("SOTForFrame(15) = %+v %v", sot, ok)
	}
	if _, ok := meta.SOTForFrame(25); ok {
		t.Error("SOTForFrame past end succeeded")
	}
	if got := meta.SOTsInRange(5, 15); len(got) != 2 {
		t.Errorf("SOTsInRange(5,15) = %d SOTs", len(got))
	}
	if got := meta.SOTsInRange(0, 10); len(got) != 1 || got[0].ID != 0 {
		t.Errorf("SOTsInRange(0,10) = %+v", got)
	}
	if got := meta.SOTsInRange(20, 30); len(got) != 0 {
		t.Errorf("SOTsInRange past end = %+v", got)
	}
}

func TestReadTileAndDecode(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	sot := meta.SOTs[1]
	tv, err := s.ReadTile("v", sot, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := sot.L.TileRectByIndex(0)
	if tv.W != r.Width() || tv.H != r.Height() {
		t.Errorf("tile dims %dx%d, want %dx%d", tv.W, tv.H, r.Width(), r.Height())
	}
	frames, _, err := tv.DecodeRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Errorf("decoded %d frames", len(frames))
	}
	if _, err := s.ReadTile("v", sot, 99); err == nil {
		t.Error("out-of-range tile read succeeded")
	}
	all, err := s.ReadAllTiles("v", sot)
	if err != nil || len(all) != 4 {
		t.Fatalf("ReadAllTiles: %d, %v", len(all), err)
	}
}

func TestReplaceSOT(t *testing.T) {
	s, _ := Open(t.TempDir())
	meta := buildVideo(t, s, "v")
	w, h := meta.W, meta.H

	// Retile SOT 0 from ω to 2x2.
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	newTiles, err := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceSOT("v", 0, l22, newTiles); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Meta("v")
	if !got.SOTs[0].L.Equal(l22) {
		t.Error("manifest layout not updated")
	}
	if got.SOTs[0].Retiles != 1 {
		t.Errorf("Retiles = %d, want 1", got.SOTs[0].Retiles)
	}
	// New tiles readable from the new version dir; old version dir reaped
	// (no reader held a lease on it).
	if _, err := s.ReadTile("v", got.SOTs[0], 3); err != nil {
		t.Errorf("new tile unreadable: %v", err)
	}
	dir := filepath.Join(s.Root(), "v", "frames_0-9.r1")
	entries, _ := os.ReadDir(dir)
	tsv := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tsv" {
			tsv++
		}
	}
	if tsv != 4 {
		t.Errorf("SOT version dir has %d tile files, want 4", tsv)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "v", "frames_0-9")); !os.IsNotExist(err) {
		t.Errorf("superseded version dir not reaped: %v", err)
	}
	if err := s.ReplaceSOT("v", 42, l22, newTiles); err == nil {
		t.Error("replace of absent SOT succeeded")
	}
	// Frame-count mismatch rejected.
	short, _ := container.EncodeTiled(makeFrames(w, h, 5, 0), l22, 10, params())
	if err := s.ReplaceSOT("v", 0, l22, short); err == nil {
		t.Error("short tiles accepted")
	}
}

func TestVideoBytes(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "v")
	n, err := s.VideoBytes("v")
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("VideoBytes = %d", n)
	}
	// Sum of individual files matches.
	var manual int64
	filepath.Walk(filepath.Join(s.Root(), "v"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".tsv" {
			manual += info.Size()
		}
		return nil
	})
	if n != manual {
		t.Errorf("VideoBytes = %d, manual sum = %d", n, manual)
	}
}

func TestListAndDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	buildVideo(t, s, "b-video")
	buildVideo(t, s, "a-video")
	got, err := s.ListVideos()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a-video" || got[1] != "b-video" {
		t.Errorf("ListVideos = %v", got)
	}
	if err := s.DeleteVideo("a-video"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ListVideos()
	if len(got) != 1 || got[0] != "b-video" {
		t.Errorf("after delete: %v", got)
	}
}

func TestTileCountMismatchRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	w, h := 128, 96
	meta := VideoMeta{Name: "v", W: w, H: h, FPS: 10, GOPLength: 10, FrameCount: 10,
		SOTs: []SOTMeta{{ID: 0, From: 0, To: 10, L: layout.Single(w, h)}}}
	l22, _ := layout.Uniform(2, 2, cons(w, h))
	tiles, _ := container.EncodeTiled(makeFrames(w, h, 10, 0), l22, 10, params())
	// 4 tiles offered for a 1-tile layout.
	if err := s.CreateVideo(meta, [][]*container.Video{tiles}); err == nil {
		t.Error("tile count mismatch accepted")
	}
}
