// Package vcodec implements a from-scratch block-transform video codec with
// the structural features TASM depends on: groups of pictures with intra
// keyframes and predicted frames, quantization-controlled lossy compression,
// motion compensation, and — critically — fully independent encoding of
// rectangular tiles (each tile is encoded as its own stream, so prediction
// and entropy state never cross tile boundaries, exactly like HEVC tiles).
//
// The codec is deliberately simple (8×8 DCT, Exp-Golomb entropy coding,
// integer-pel motion) but is a real codec: decode cost is dominated by
// per-pixel inverse-transform work plus per-stream setup overhead, giving
// the linear cost structure C = β·pixels + γ·tiles that the paper's cost
// model captures.
//
// The hot paths are allocation-free in steady state: encoders and decoders
// ping-pong between preallocated reconstruction planes, draw scratch planes
// from a shared sync.Pool (returned via Release), and reuse their bitstream
// reader/writer buffers across packets.
package vcodec

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tasm-repro/tasm/internal/bitio"
	"github.com/tasm-repro/tasm/internal/frame"
)

const (
	mbSize = 16 // motion-compensation macroblock (luma)
	// eobRun marks end-of-block in the AC run-length code. Valid runs are
	// 0..62 (63 AC coefficients per block).
	eobRun = 63
)

// Edge indexes for Params.InteriorEdges.
const (
	EdgeLeft = iota
	EdgeTop
	EdgeRight
	EdgeBottom
)

// Params configures an encoder.
type Params struct {
	// QP is the base quantization parameter (0..51). Higher = smaller and
	// lossier. Default 22.
	QP int
	// GOPLength is the keyframe interval in frames. Default 30.
	GOPLength int
	// MotionSearch enables motion estimation for P frames. Default on in
	// DefaultParams.
	MotionSearch bool
	// SearchRange bounds each motion-vector component. Default 4.
	SearchRange int
	// BoundaryQPOffset is added to the QP of blocks along frame edges
	// flagged in InteriorEdges. It models the bit-allocation penalty real
	// encoders pay at tile boundaries (no cross-boundary prediction or
	// in-loop filtering), which is what degrades quality as tile counts
	// grow (paper Fig. 6(b)). Default 4.
	BoundaryQPOffset int
	// InteriorEdges flags which edges of this stream adjoin other tiles
	// (EdgeLeft, EdgeTop, EdgeRight, EdgeBottom). Picture edges stay false.
	InteriorEdges [4]bool
}

// DefaultParams returns the parameter set used across the reproduction.
func DefaultParams() Params {
	return Params{QP: 22, GOPLength: 30, MotionSearch: true, SearchRange: 4, BoundaryQPOffset: 4}
}

func (p Params) withDefaults() Params {
	if p.QP <= 0 {
		p.QP = 22
	}
	if p.QP > maxQP {
		p.QP = maxQP
	}
	if p.GOPLength <= 0 {
		p.GOPLength = 30
	}
	if p.SearchRange <= 0 {
		p.SearchRange = 4
	}
	if p.BoundaryQPOffset < 0 {
		p.BoundaryQPOffset = 0
	}
	return p
}

// plane is a padded sample plane.
type plane struct {
	w, h int
	pix  []byte
}

// planePool recycles plane backing stores across encoder/decoder lifetimes.
// Scan decodes one short-lived decoder per (SOT, tile) job, so without the
// pool every tile decode pays ~11 plane allocations before the first packet.
// Pooled planes are NOT zeroed: every codec path fully overwrites a plane
// before reading it (keyframes predict from the constant plane, P frames
// from the previous reconstruction).
var planePool = sync.Pool{New: func() any { return new(plane) }}

// getPlane returns a w×h plane with undefined contents.
func getPlane(w, h int) *plane {
	p := planePool.Get().(*plane)
	if cap(p.pix) < w*h {
		p.pix = make([]byte, w*h)
	} else {
		p.pix = p.pix[:w*h]
	}
	p.w, p.h = w, h
	return p
}

func putPlane(p *plane) {
	if p != nil {
		planePool.Put(p)
	}
}

// padUp rounds v up to a multiple of m.
func padUp(v, m int) int { return (v + m - 1) / m * m }

// mv is an integer-pel motion vector.
type mv struct{ dx, dy int8 }

// Encoder encodes a single stream (one tile, or a whole untiled frame).
type Encoder struct {
	params   Params
	w, h     int // display dimensions
	pw, ph   int // padded luma dimensions (multiple of mbSize)
	frameIdx int
	recon    [3]*plane // reconstructed reference (Y, Cb, Cr)
	spare    [3]*plane // next reconstruction target (ping-pong with recon)
	predBuf  [3]*plane // motion-compensation scratch
	flat     [3]*plane // constant-128 keyframe predictors
	padBuf   *frame.Frame
	mvs      []mv
	released bool
	// scratch
	bw bitio.Writer
}

// NewEncoder creates an encoder for frames of the given display size. Call
// Release when done to return its scratch planes to the shared pool.
func NewEncoder(w, h int, p Params) (*Encoder, error) {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("vcodec: invalid dimensions %dx%d", w, h)
	}
	p = p.withDefaults()
	e := &Encoder{params: p, w: w, h: h, pw: padUp(w, mbSize), ph: padUp(h, mbSize)}
	allocPlaneSets(e.pw, e.ph, &e.recon, &e.spare, &e.predBuf, &e.flat)
	fillFlat(&e.flat)
	return e, nil
}

// allocPlaneSets draws Y + half-resolution Cb/Cr planes from the pool for
// each of the given sets.
func allocPlaneSets(pw, ph int, sets ...*[3]*plane) {
	for _, s := range sets {
		s[0] = getPlane(pw, ph)
		s[1] = getPlane(pw/2, ph/2)
		s[2] = getPlane(pw/2, ph/2)
	}
}

func fillFlat(s *[3]*plane) {
	for _, p := range s {
		for i := range p.pix {
			p.pix[i] = 128
		}
	}
}

// Release returns the encoder's planes to the shared pool. The encoder must
// not be used afterwards. Release is idempotent and nil-safe.
func (e *Encoder) Release() {
	if e == nil || e.released {
		return
	}
	e.released = true
	for _, s := range []*[3]*plane{&e.recon, &e.spare, &e.predBuf, &e.flat} {
		for i, p := range s {
			putPlane(p)
			s[i] = nil
		}
	}
}

// GOPLength returns the configured keyframe interval.
func (e *Encoder) GOPLength() int { return e.params.GOPLength }

// Encode compresses f, which must match the encoder's dimensions. A keyframe
// is produced on the GOP cadence or when forceKey is set; the return value
// isKey reports which. The returned packet is owned by the caller.
func (e *Encoder) Encode(f *frame.Frame, forceKey bool) (packet []byte, isKey bool, err error) {
	if f.W != e.w || f.H != e.h {
		return nil, false, fmt.Errorf("vcodec: frame %dx%d does not match encoder %dx%d", f.W, f.H, e.w, e.h)
	}
	isKey = forceKey || e.frameIdx%e.params.GOPLength == 0
	padded := f
	if e.pw != e.w || e.ph != e.h {
		if e.padBuf == nil {
			e.padBuf = frame.New(e.pw, e.ph)
		}
		f.PadInto(e.padBuf)
		padded = e.padBuf
	}
	cur := [3]plane{
		{w: e.pw, h: e.ph, pix: padded.Y},
		{w: e.pw / 2, h: e.ph / 2, pix: padded.Cb},
		{w: e.pw / 2, h: e.ph / 2, pix: padded.Cr},
	}

	e.bw.Reset()
	if isKey {
		e.bw.WriteBit(1)
	} else {
		e.bw.WriteBit(0)
	}
	e.bw.WriteBits(uint64(e.params.QP), 6)

	var mvs []mv
	if !isKey {
		hasMV := e.params.MotionSearch
		if hasMV {
			e.bw.WriteBit(1)
			mvs = e.estimateMotion(&cur[0])
			for _, v := range mvs {
				e.bw.WriteSE(int32(v.dx))
				e.bw.WriteSE(int32(v.dy))
			}
		} else {
			e.bw.WriteBit(0)
		}
	}

	for pi := 0; pi < 3; pi++ {
		var pred *plane
		if isKey {
			pred = e.flat[pi]
		} else {
			motionCompensateInto(e.predBuf[pi], e.recon[pi], mvs, e.mbCols(), pi > 0)
			pred = e.predBuf[pi]
		}
		newRecon := e.spare[pi]
		e.codePlane(&e.bw, &cur[pi], pred, newRecon)
		e.recon[pi], e.spare[pi] = newRecon, e.recon[pi]
	}

	e.frameIdx++
	out := append([]byte(nil), e.bw.Bytes()...)
	return out, isKey, nil
}

func (e *Encoder) mbCols() int { return e.pw / mbSize }
func (e *Encoder) mbRows() int { return e.ph / mbSize }

// blockQP returns the QP for the block whose top-left luma-scale pixel is
// (x0, y0) in a plane of size (w, h), applying the boundary penalty along
// flagged interior tile edges.
func (e *Encoder) blockQP(x0, y0, bw, bh, w, h int) int {
	qp := e.params.QP
	edges := e.params.InteriorEdges
	if e.params.BoundaryQPOffset > 0 &&
		((edges[EdgeLeft] && x0 == 0) || (edges[EdgeTop] && y0 == 0) ||
			(edges[EdgeRight] && x0+bw >= w) || (edges[EdgeBottom] && y0+bh >= h)) {
		qp += e.params.BoundaryQPOffset
		if qp > maxQP {
			qp = maxQP
		}
	}
	return qp
}

// codePlane transform-codes cur against pred, writing syntax to w and the
// reconstruction (pred + dequantized residual) into recon.
func (e *Encoder) codePlane(w *bitio.Writer, cur, pred, recon *plane) {
	var res, coefs [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	prevDC := int32(0)
	for y0 := 0; y0 < cur.h; y0 += blockSize {
		for x0 := 0; x0 < cur.w; x0 += blockSize {
			// Residual block.
			for y := 0; y < blockSize; y++ {
				row := (y0+y)*cur.w + x0
				for x := 0; x < blockSize; x++ {
					res[y*blockSize+x] = float64(cur.pix[row+x]) - float64(pred.pix[row+x])
				}
			}
			forwardDCT(&res, &coefs)
			qp := e.blockQP(x0, y0, blockSize, blockSize, cur.w, cur.h)
			quantize(&coefs, &levels, qp)
			writeBlock(w, &levels, prevDC, qp)
			prevDC = levels[0]
			// Reconstruct exactly as the decoder will.
			dequantize(&levels, &coefs, qp)
			inverseDCT(&coefs, &res)
			for y := 0; y < blockSize; y++ {
				row := (y0+y)*cur.w + x0
				for x := 0; x < blockSize; x++ {
					recon.pix[row+x] = clampByte(float64(pred.pix[row+x]) + res[y*blockSize+x])
				}
			}
		}
	}
}

// writeBlock emits one quantized block: delta-coded DC then (run, level)
// pairs over the zig-zag scan, terminated by an EOB sentinel. The block QP
// is carried as a 6-bit field only when it differs from the frame QP; to
// keep the syntax simple we always write it.
func writeBlock(w *bitio.Writer, levels *[blockSize * blockSize]int32, prevDC int32, qp int) {
	w.WriteBits(uint64(qp), 6)
	w.WriteSE(levels[0] - prevDC)
	run := uint32(0)
	for i := 1; i < blockSize*blockSize; i++ {
		v := levels[zigzag[i]]
		if v == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(v)
		run = 0
	}
	w.WriteUE(eobRun)
}

func readBlock(r *bitio.Reader, levels *[blockSize * blockSize]int32, prevDC int32) (dc int32, qp int, err error) {
	for i := range levels {
		levels[i] = 0
	}
	q, err := r.ReadBits(6)
	if err != nil {
		return 0, 0, err
	}
	d, err := r.ReadSE()
	if err != nil {
		return 0, 0, err
	}
	levels[0] = prevDC + d
	pos := 1
	for {
		run, err := r.ReadUE()
		if err != nil {
			return 0, 0, err
		}
		if run == eobRun {
			break
		}
		pos += int(run)
		if pos >= blockSize*blockSize {
			return 0, 0, errors.New("vcodec: AC run escapes block")
		}
		lvl, err := r.ReadSE()
		if err != nil {
			return 0, 0, err
		}
		levels[zigzag[pos]] = lvl
		pos++
	}
	return levels[0], int(q), nil
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v + 0.5)
}

// DecodeStats accumulates the work a decoder has performed. PixelsDecoded
// counts display (luma) pixels, the quantity P in TASM's cost model.
type DecodeStats struct {
	FramesDecoded int64
	PixelsDecoded int64
}

// Decoder decodes a stream produced by Encoder with the same dimensions.
type Decoder struct {
	w, h     int
	pw, ph   int
	recon    [3]*plane
	spare    [3]*plane
	predBuf  [3]*plane
	flat     [3]*plane
	mvs      []mv
	r        bitio.Reader
	stats    DecodeStats
	released bool
}

// NewDecoder creates a decoder for a stream of the given display size. Call
// Release when done to return its planes to the shared pool.
func NewDecoder(w, h int) (*Decoder, error) {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("vcodec: invalid dimensions %dx%d", w, h)
	}
	d := &Decoder{w: w, h: h, pw: padUp(w, mbSize), ph: padUp(h, mbSize)}
	allocPlaneSets(d.pw, d.ph, &d.recon, &d.spare, &d.predBuf, &d.flat)
	fillFlat(&d.flat)
	// A well-formed stream starts with a keyframe, which overwrites every
	// reference sample before it is read. But a corrupt stream whose first
	// packet claims to be a P-frame predicts from the initial reference —
	// zero it so such streams produce deterministic black, never pixels
	// recycled from an earlier decode's pooled planes.
	for _, p := range d.recon {
		clear(p.pix)
	}
	return d, nil
}

// Release returns the decoder's planes to the shared pool. The decoder (and
// any plane state, not frames it returned) must not be used afterwards.
// Release is idempotent and nil-safe.
func (d *Decoder) Release() {
	if d == nil || d.released {
		return
	}
	d.released = true
	for _, s := range []*[3]*plane{&d.recon, &d.spare, &d.predBuf, &d.flat} {
		for i, p := range s {
			putPlane(p)
			s[i] = nil
		}
	}
}

// Stats returns the accumulated decode statistics.
func (d *Decoder) Stats() DecodeStats { return d.stats }

// Decode decompresses one packet. P-frame packets must be decoded in stream
// order following their keyframe. The returned frame owns its pixel data.
func (d *Decoder) Decode(packet []byte) (*frame.Frame, error) {
	if err := d.decode(packet); err != nil {
		return nil, err
	}
	out := frame.New(d.w, d.h)
	copyPlanePrefix(out.Y, d.w, d.h, d.recon[0])
	copyPlanePrefix(out.Cb, d.w/2, d.h/2, d.recon[1])
	copyPlanePrefix(out.Cr, d.w/2, d.h/2, d.recon[2])
	return out, nil
}

// DecodeDiscard decompresses one packet, updating the reference planes and
// decode statistics without materializing an output frame. Decoding the
// warm-up frames between a GOP's keyframe and the first requested frame
// this way skips one full-frame allocation and copy per skipped frame.
func (d *Decoder) DecodeDiscard(packet []byte) error { return d.decode(packet) }

func (d *Decoder) decode(packet []byte) error {
	d.r.Reset(packet)
	r := &d.r
	keyBit, err := r.ReadBit()
	if err != nil {
		return err
	}
	if _, err := r.ReadBits(6); err != nil { // frame QP (informational)
		return err
	}
	isKey := keyBit == 1

	var mvs []mv
	if !isKey {
		hasMV, err := r.ReadBit()
		if err != nil {
			return err
		}
		if hasMV == 1 {
			n := (d.pw / mbSize) * (d.ph / mbSize)
			if cap(d.mvs) < n {
				d.mvs = make([]mv, n)
			}
			mvs = d.mvs[:n]
			for i := range mvs {
				dx, err := r.ReadSE()
				if err != nil {
					return err
				}
				dy, err := r.ReadSE()
				if err != nil {
					return err
				}
				mvs[i] = mv{dx: int8(dx), dy: int8(dy)}
			}
		}
	}

	for pi := 0; pi < 3; pi++ {
		var pred *plane
		if isKey {
			pred = d.flat[pi]
		} else {
			motionCompensateInto(d.predBuf[pi], d.recon[pi], mvs, d.pw/mbSize, pi > 0)
			pred = d.predBuf[pi]
		}
		out := d.spare[pi]
		if err := decodePlane(r, pred, out); err != nil {
			return fmt.Errorf("vcodec: plane %d: %w", pi, err)
		}
		d.recon[pi], d.spare[pi] = out, d.recon[pi]
	}

	d.stats.FramesDecoded++
	d.stats.PixelsDecoded += int64(d.w) * int64(d.h)
	return nil
}

// copyPlanePrefix copies the top-left w×h window of src into dst, dropping
// the codec's alignment padding without an intermediate frame.
func copyPlanePrefix(dst []byte, w, h int, src *plane) {
	if src.w == w {
		copy(dst, src.pix[:w*h])
		return
	}
	for y := 0; y < h; y++ {
		copy(dst[y*w:(y+1)*w], src.pix[y*src.w:y*src.w+w])
	}
}

func decodePlane(r *bitio.Reader, pred, out *plane) error {
	var coefs, res [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	prevDC := int32(0)
	for y0 := 0; y0 < out.h; y0 += blockSize {
		for x0 := 0; x0 < out.w; x0 += blockSize {
			dc, qp, err := readBlock(r, &levels, prevDC)
			if err != nil {
				return err
			}
			prevDC = dc
			dequantize(&levels, &coefs, qp)
			inverseDCT(&coefs, &res)
			for y := 0; y < blockSize; y++ {
				row := (y0+y)*out.w + x0
				for x := 0; x < blockSize; x++ {
					out.pix[row+x] = clampByte(float64(pred.pix[row+x]) + res[y*blockSize+x])
				}
			}
		}
	}
	return nil
}
