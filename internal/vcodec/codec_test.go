package vcodec

import (
	"math"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/stats"
)

func TestDCTRoundTrip(t *testing.T) {
	var src, freq, back [blockSize * blockSize]float64
	rng := stats.NewRNG(1)
	for i := range src {
		src[i] = float64(rng.Intn(256)) - 128
	}
	forwardDCT(&src, &freq)
	inverseDCT(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func TestDCTParseval(t *testing.T) {
	// The orthonormal DCT preserves energy.
	var src, freq [blockSize * blockSize]float64
	rng := stats.NewRNG(2)
	for i := range src {
		src[i] = rng.Float64()*200 - 100
	}
	forwardDCT(&src, &freq)
	var e1, e2 float64
	for i := range src {
		e1 += src[i] * src[i]
		e2 += freq[i] * freq[i]
	}
	if math.Abs(e1-e2) > 1e-6*e1 {
		t.Errorf("energy not preserved: %v vs %v", e1, e2)
	}
}

func TestDCTDCOnly(t *testing.T) {
	var src, freq [blockSize * blockSize]float64
	for i := range src {
		src[i] = 80
	}
	forwardDCT(&src, &freq)
	if math.Abs(freq[0]-80*8) > 1e-9 {
		t.Errorf("DC coefficient = %v, want 640", freq[0])
	}
	for i := 1; i < len(freq); i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Errorf("AC coefficient %d = %v, want 0", i, freq[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, v := range zigzag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag not a permutation: %v", zigzag)
		}
		seen[v] = true
	}
	// First few entries of the classic scan.
	want := []int{0, 1, 8, 16, 9, 2, 3, 10}
	for i, w := range want {
		if zigzag[i] != w {
			t.Errorf("zigzag[%d] = %d, want %d", i, zigzag[i], w)
		}
	}
}

func TestQuantMonotonicInQP(t *testing.T) {
	for i := 0; i < blockSize*blockSize; i++ {
		prev := 0.0
		for qp := 0; qp <= maxQP; qp++ {
			step := quantTable(qp)[i]
			if step < prev {
				t.Fatalf("quant step decreased at qp=%d idx=%d", qp, i)
			}
			prev = step
		}
	}
}

func TestQuantDequantBounded(t *testing.T) {
	var coefs, back [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	rng := stats.NewRNG(3)
	for i := range coefs {
		coefs[i] = rng.Float64()*2000 - 1000
	}
	qp := 22
	quantize(&coefs, &levels, qp)
	dequantize(&levels, &back, qp)
	tbl := quantTable(qp)
	for i := range coefs {
		if math.Abs(coefs[i]-back[i]) > tbl[i]/2+1e-9 {
			t.Errorf("dequant error %v exceeds half step %v", math.Abs(coefs[i]-back[i]), tbl[i]/2)
		}
	}
}

// testFrame builds a deterministic frame with a gradient background and a
// bright moving square, offset by t.
func testFrame(w, h, t int) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Y[y*w+x] = byte((x + 2*y) % 200)
		}
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	f.FillRect(geom.R(8+2*t, 8+t, 8+2*t+16, 8+t+16), 240, 90, 160)
	return f
}

func TestEncodeDecodeKeyframe(t *testing.T) {
	w, h := 64, 48
	enc, err := NewEncoder(w, h, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(w, h)
	if err != nil {
		t.Fatal(err)
	}
	src := testFrame(w, h, 0)
	pkt, isKey, err := enc.Encode(src, false)
	if err != nil {
		t.Fatal(err)
	}
	if !isKey {
		t.Error("first frame should be a keyframe")
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != w || got.H != h {
		t.Fatalf("decoded dims %dx%d", got.W, got.H)
	}
	if psnr := frame.PSNR(src, got); psnr < 32 {
		t.Errorf("keyframe PSNR = %.1f dB, want >= 32", psnr)
	}
}

func TestEncodeDecodeSequence(t *testing.T) {
	w, h := 64, 64
	p := DefaultParams()
	p.GOPLength = 5
	enc, _ := NewEncoder(w, h, p)
	dec, _ := NewDecoder(w, h)
	var keyBytes, pBytes int
	for i := 0; i < 12; i++ {
		src := testFrame(w, h, i)
		pkt, isKey, err := enc.Encode(src, false)
		if err != nil {
			t.Fatal(err)
		}
		if wantKey := i%5 == 0; isKey != wantKey {
			t.Errorf("frame %d: isKey = %v, want %v", i, isKey, wantKey)
		}
		if isKey {
			keyBytes += len(pkt)
		} else {
			pBytes += len(pkt)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if psnr := frame.PSNR(src, got); psnr < 30 {
			t.Errorf("frame %d PSNR = %.1f dB, want >= 30", i, psnr)
		}
	}
	// Keyframes must be substantially more expensive per frame than P frames:
	// this is the storage-overhead mechanism behind the paper's Figure 9.
	keyPer := float64(keyBytes) / 3
	pPer := float64(pBytes) / 9
	if keyPer < 1.5*pPer {
		t.Errorf("keyframe bytes/frame %.0f not clearly larger than P %.0f", keyPer, pPer)
	}
	st := dec.Stats()
	if st.FramesDecoded != 12 {
		t.Errorf("FramesDecoded = %d, want 12", st.FramesDecoded)
	}
	if st.PixelsDecoded != 12*64*64 {
		t.Errorf("PixelsDecoded = %d, want %d", st.PixelsDecoded, 12*64*64)
	}
}

func TestForceKey(t *testing.T) {
	enc, _ := NewEncoder(32, 32, DefaultParams())
	enc.Encode(testFrame(32, 32, 0), false)
	_, isKey, _ := enc.Encode(testFrame(32, 32, 1), true)
	if !isKey {
		t.Error("forceKey ignored")
	}
}

func TestNonAlignedDimensions(t *testing.T) {
	// 50x38 is not macroblock-aligned; codec must pad and crop transparently.
	w, h := 50, 38
	enc, err := NewEncoder(w, h, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(w, h)
	src := testFrame(w, h, 0)
	pkt, _, err := enc.Encode(src, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != w || got.H != h {
		t.Fatalf("decoded dims %dx%d, want %dx%d", got.W, got.H, w, h)
	}
	if psnr := frame.PSNR(src, got); psnr < 30 {
		t.Errorf("PSNR = %.1f", psnr)
	}
}

func TestInvalidDimensions(t *testing.T) {
	if _, err := NewEncoder(0, 16, DefaultParams()); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewEncoder(15, 16, DefaultParams()); err == nil {
		t.Error("odd width accepted")
	}
	if _, err := NewDecoder(16, -2); err == nil {
		t.Error("negative height accepted")
	}
}

func TestEncodeWrongSizeFrame(t *testing.T) {
	enc, _ := NewEncoder(32, 32, DefaultParams())
	if _, _, err := enc.Encode(frame.New(64, 64), false); err == nil {
		t.Error("mismatched frame accepted")
	}
}

func TestQPQualityTradeoff(t *testing.T) {
	w, h := 64, 64
	src := testFrame(w, h, 0)
	var prevPSNR float64 = math.Inf(1)
	var prevSize = 1 << 30
	for _, qp := range []int{10, 22, 34, 46} {
		p := DefaultParams()
		p.QP = qp
		enc, _ := NewEncoder(w, h, p)
		dec, _ := NewDecoder(w, h)
		pkt, _, _ := enc.Encode(src, false)
		got, _ := dec.Decode(pkt)
		psnr := frame.PSNR(src, got)
		if psnr > prevPSNR+0.5 {
			t.Errorf("qp=%d PSNR %.1f should not exceed qp-smaller PSNR %.1f", qp, psnr, prevPSNR)
		}
		if len(pkt) > prevSize*11/10 {
			t.Errorf("qp=%d size %d should shrink vs %d", qp, len(pkt), prevSize)
		}
		prevPSNR, prevSize = psnr, len(pkt)
	}
}

func TestMotionCompensationHelpsMovingContent(t *testing.T) {
	w, h := 64, 64
	withMV := DefaultParams()
	withMV.GOPLength = 100
	noMV := withMV
	noMV.MotionSearch = false

	encode := func(p Params) int {
		enc, _ := NewEncoder(w, h, p)
		total := 0
		for i := 0; i < 6; i++ {
			pkt, _, err := enc.Encode(testFrame(w, h, i), false)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 { // skip the keyframe
				total += len(pkt)
			}
		}
		return total
	}
	mvBytes, plainBytes := encode(withMV), encode(noMV)
	if mvBytes >= plainBytes {
		t.Errorf("motion search did not reduce P-frame bytes: %d vs %d", mvBytes, plainBytes)
	}
}

func TestDecodeCorruptPacket(t *testing.T) {
	dec, _ := NewDecoder(32, 32)
	if _, err := dec.Decode([]byte{0xFF}); err == nil {
		t.Error("truncated packet decoded without error")
	}
	if _, err := dec.Decode(nil); err == nil {
		t.Error("empty packet decoded without error")
	}
}

func TestBoundaryQPOffsetDegradesEdges(t *testing.T) {
	w, h := 64, 64
	src := testFrame(w, h, 0)
	flat := DefaultParams()
	flat.BoundaryQPOffset = 0
	pen := DefaultParams()
	pen.BoundaryQPOffset = 10
	pen.InteriorEdges = [4]bool{true, true, true, true}

	decodeWith := func(p Params) *frame.Frame {
		enc, _ := NewEncoder(w, h, p)
		dec, _ := NewDecoder(w, h)
		pkt, _, _ := enc.Encode(src, false)
		out, _ := dec.Decode(pkt)
		return out
	}
	q0 := frame.PSNR(src, decodeWith(flat))
	q1 := frame.PSNR(src, decodeWith(pen))
	if q1 >= q0 {
		t.Errorf("boundary penalty did not reduce quality: %.2f vs %.2f", q1, q0)
	}
}

func TestReconMatchesDecoderExactly(t *testing.T) {
	// The encoder's internal reconstruction must match the decoder's output
	// bit-for-bit, or P frames would drift.
	w, h := 48, 48
	enc, _ := NewEncoder(w, h, DefaultParams())
	dec, _ := NewDecoder(w, h)
	for i := 0; i < 8; i++ {
		pkt, _, _ := enc.Encode(testFrame(w, h, i), false)
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		padded := got.PadTo(enc.pw, enc.ph)
		for j := range padded.Y {
			if padded.Y[j] != enc.recon[0].pix[j] {
				t.Fatalf("frame %d: encoder/decoder recon mismatch at %d", i, j)
			}
		}
	}
}

func BenchmarkEncode64(b *testing.B) {
	enc, _ := NewEncoder(64, 64, DefaultParams())
	f := testFrame(64, 64, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(f, false)
	}
}

func BenchmarkDecode64(b *testing.B) {
	enc, _ := NewEncoder(64, 64, DefaultParams())
	pkt, _, _ := enc.Encode(testFrame(64, 64, 0), false)
	dec, _ := NewDecoder(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(pkt)
	}
}
