package vcodec

import "math"

// blockSize is the transform block size. All tile and picture dimensions are
// padded to multiples of 2*blockSize (luma) so the 4:2:0 chroma planes stay
// block-aligned.
const blockSize = 8

// dctMatrix holds the orthonormal DCT-II basis: dctMatrix[u][x] =
// sqrt(2/N)·c(u)·cos((2x+1)uπ/2N) with c(0)=1/√2.
var dctMatrix [blockSize][blockSize]float64

func init() {
	n := float64(blockSize)
	for u := 0; u < blockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < blockSize; x++ {
			dctMatrix[u][x] = math.Sqrt(2/n) * cu * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*n))
		}
	}
}

// forwardDCT computes the 2D DCT-II of the 8x8 block in src into dst.
// Both are length-64 row-major slices.
func forwardDCT(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows: tmp = src · C^T  (tmp[y][u] = Σ_x src[y][x]·C[u][x])
	for y := 0; y < blockSize; y++ {
		row := src[y*blockSize:]
		for u := 0; u < blockSize; u++ {
			var s float64
			c := &dctMatrix[u]
			for x := 0; x < blockSize; x++ {
				s += row[x] * c[x]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Columns: dst = C · tmp  (dst[v][u] = Σ_y C[v][y]·tmp[y][u])
	for v := 0; v < blockSize; v++ {
		c := &dctMatrix[v]
		for u := 0; u < blockSize; u++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += c[y] * tmp[y*blockSize+u]
			}
			dst[v*blockSize+u] = s
		}
	}
}

// inverseDCT computes the 2D inverse DCT (DCT-III) of src into dst.
func inverseDCT(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows: tmp[v][x] = Σ_u src[v][u]·C[u][x]
	for v := 0; v < blockSize; v++ {
		row := src[v*blockSize:]
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += row[u] * dctMatrix[u][x]
			}
			tmp[v*blockSize+x] = s
		}
	}
	// Columns: dst[y][x] = Σ_v C[v][y]·tmp[v][x]
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += dctMatrix[v][y] * tmp[v*blockSize+x]
			}
			dst[y*blockSize+x] = s
		}
	}
}

// zigzag maps scan order -> raster index, the classic 8x8 diagonal scan used
// to cluster the low-frequency coefficients in front of runs of zeros.
var zigzag = buildZigzag()

func buildZigzag() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	idx := 0
	for d := 0; d < 2*blockSize-1; d++ {
		if d%2 == 0 { // walk up-right
			for y := min(d, blockSize-1); y >= 0 && d-y < blockSize; y-- {
				order[idx] = y*blockSize + (d - y)
				idx++
			}
		} else { // walk down-left
			for x := min(d, blockSize-1); x >= 0 && d-x < blockSize; x-- {
				order[idx] = (d-x)*blockSize + x
				idx++
			}
		}
	}
	return order
}
