package vcodec

// Motion estimation and compensation. One integer-pel motion vector per
// 16×16 luma macroblock; chroma planes reuse the vector halved. References
// never cross the stream boundary (samples are edge-clamped), which is what
// makes each tile stream independently decodable.

// samp reads p(x, y) with edge clamping.
func (p *plane) samp(x, y int) byte {
	if x < 0 {
		x = 0
	} else if x >= p.w {
		x = p.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.h {
		y = p.h - 1
	}
	return p.pix[y*p.w+x]
}

// sad computes the sum of absolute differences between the size×size block
// of cur at (x0, y0) and the block of ref at (x0+dx, y0+dy), early-exiting
// once the running total exceeds best.
func sad(cur, ref *plane, x0, y0, dx, dy, size int, best int) int {
	total := 0
	for y := 0; y < size; y++ {
		cy := y0 + y
		ry := cy + dy
		for x := 0; x < size; x++ {
			d := int(cur.pix[cy*cur.w+x0+x]) - int(ref.samp(x0+x+dx, ry))
			if d < 0 {
				d = -d
			}
			total += d
		}
		if total >= best {
			return total
		}
	}
	return total
}

// estimateMotion returns one motion vector per macroblock of cur (the padded
// luma plane) against the encoder's reconstructed reference. It uses a small
// diamond search seeded with the zero vector and the left/top neighbor
// predictors — a few dozen SADs per macroblock, which keeps the pure-Go
// encoder usable while still tracking real object motion.
func (e *Encoder) estimateMotion(cur *plane) []mv {
	ref := e.recon[0]
	cols, rows := e.mbCols(), e.mbRows()
	if cap(e.mvs) < cols*rows {
		e.mvs = make([]mv, cols*rows)
	}
	mvs := e.mvs[:cols*rows]
	r := e.params.SearchRange
	for my := 0; my < rows; my++ {
		for mx := 0; mx < cols; mx++ {
			x0, y0 := mx*mbSize, my*mbSize
			bestDX, bestDY := 0, 0
			best := sad(cur, ref, x0, y0, 0, 0, mbSize, 1<<30)
			try := func(dx, dy int) {
				if dx < -r || dx > r || dy < -r || dy > r {
					return
				}
				if dx == bestDX && dy == bestDY {
					return
				}
				if s := sad(cur, ref, x0, y0, dx, dy, mbSize, best); s < best {
					best, bestDX, bestDY = s, dx, dy
				}
			}
			// Neighbor predictors.
			if mx > 0 {
				p := mvs[my*cols+mx-1]
				try(int(p.dx), int(p.dy))
			}
			if my > 0 {
				p := mvs[(my-1)*cols+mx]
				try(int(p.dx), int(p.dy))
			}
			// Diamond refinement around the best candidate.
			for step := r; step >= 1; step /= 2 {
				improved := true
				for improved {
					improved = false
					cx, cy := bestDX, bestDY
					for _, d := range [4][2]int{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
						prev := best
						try(cx+d[0], cy+d[1])
						if best < prev {
							improved = true
						}
					}
				}
			}
			mvs[my*cols+mx] = mv{dx: int8(bestDX), dy: int8(bestDY)}
		}
	}
	return mvs
}

// motionCompensateInto builds the prediction plane for one plane of a P
// frame into out, which must match ref's dimensions (its prior contents are
// fully overwritten). mvs may be nil (no motion data), in which case the
// reference is copied. For chroma planes the vectors are halved and the
// macroblock grid shrinks to 8×8.
func motionCompensateInto(out, ref *plane, mvs []mv, mbCols int, chroma bool) {
	if mvs == nil {
		copy(out.pix, ref.pix)
		return
	}
	size := mbSize
	if chroma {
		size = mbSize / 2
	}
	rows := ref.h / size
	for my := 0; my < rows; my++ {
		for mx := 0; mx < mbCols; mx++ {
			v := mvs[my*mbCols+mx]
			dx, dy := int(v.dx), int(v.dy)
			if chroma {
				dx, dy = dx/2, dy/2
			}
			x0, y0 := mx*size, my*size
			for y := 0; y < size; y++ {
				sy := y0 + y + dy
				dst := (y0+y)*out.w + x0
				if sy >= 0 && sy < ref.h && x0+dx >= 0 && x0+size+dx <= ref.w {
					// Fast path: whole row in bounds.
					src := sy*ref.w + x0 + dx
					copy(out.pix[dst:dst+size], ref.pix[src:src+size])
					continue
				}
				for x := 0; x < size; x++ {
					out.pix[dst+x] = ref.samp(x0+x+dx, sy)
				}
			}
		}
	}
}
