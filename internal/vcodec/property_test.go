package vcodec

import (
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/stats"
)

// randomFrame fills a frame with seeded noise plus a smooth component, the
// worst and best cases for a transform codec mixed together.
func randomFrame(w, h int, seed uint64) *frame.Frame {
	f := frame.New(w, h)
	rng := stats.NewRNG(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			smooth := byte((x*2 + y*3) % 200)
			noise := byte(rng.Intn(32))
			f.Y[y*w+x] = smooth/2 + noise
		}
	}
	for i := range f.Cb {
		f.Cb[i] = byte(100 + rng.Intn(56))
		f.Cr[i] = byte(100 + rng.Intn(56))
	}
	return f
}

// Property: any frame round-trips within the quantizer's error bound, for
// many sizes and QPs.
func TestRoundTripPropertyAcrossSizesAndQPs(t *testing.T) {
	cases := []struct {
		w, h, qp int
		minPSNR  float64
	}{
		{16, 16, 10, 38},
		{48, 32, 18, 34},
		{64, 64, 22, 31},
		{80, 48, 30, 26},
		{128, 96, 38, 22},
		{34, 18, 22, 28}, // non-aligned dims
	}
	for _, tc := range cases {
		p := DefaultParams()
		p.QP = tc.qp
		enc, err := NewEncoder(tc.w, tc.h, p)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.w, tc.h, err)
		}
		dec, _ := NewDecoder(tc.w, tc.h)
		for i := 0; i < 4; i++ {
			src := randomFrame(tc.w, tc.h, uint64(i)*7+1)
			pkt, _, err := enc.Encode(src, false)
			if err != nil {
				t.Fatalf("%dx%d qp%d frame %d: %v", tc.w, tc.h, tc.qp, i, err)
			}
			got, err := dec.Decode(pkt)
			if err != nil {
				t.Fatalf("%dx%d qp%d frame %d: %v", tc.w, tc.h, tc.qp, i, err)
			}
			if psnr := frame.PSNR(src, got); psnr < tc.minPSNR {
				t.Errorf("%dx%d qp%d frame %d: PSNR %.1f < %.1f", tc.w, tc.h, tc.qp, i, psnr, tc.minPSNR)
			}
		}
	}
}

// Property: encoding is deterministic — same input produces identical
// bitstreams.
func TestEncodeDeterministic(t *testing.T) {
	run := func() [][]byte {
		enc, _ := NewEncoder(48, 48, DefaultParams())
		var pkts [][]byte
		for i := 0; i < 5; i++ {
			pkt, _, _ := enc.Encode(randomFrame(48, 48, uint64(i)), false)
			pkts = append(pkts, pkt)
		}
		return pkts
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("frame %d: nondeterministic length", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("frame %d: nondeterministic byte %d", i, j)
			}
		}
	}
}

// Property: a keyframe resets all decoder state — decoding a GOP never
// depends on packets before its keyframe.
func TestGOPIndependence(t *testing.T) {
	p := DefaultParams()
	p.GOPLength = 4
	enc, _ := NewEncoder(48, 48, p)
	var pkts [][]byte
	var srcs []*frame.Frame
	for i := 0; i < 12; i++ {
		src := randomFrame(48, 48, uint64(i)*3)
		srcs = append(srcs, src)
		pkt, isKey, _ := enc.Encode(src, false)
		if isKey != (i%4 == 0) {
			t.Fatalf("frame %d key=%v", i, isKey)
		}
		pkts = append(pkts, pkt)
	}
	// Decode only the second GOP (packets 4..7) with a fresh decoder.
	dec, _ := NewDecoder(48, 48)
	for i := 4; i < 8; i++ {
		got, err := dec.Decode(pkts[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if psnr := frame.PSNR(srcs[i], got); psnr < 26 {
			t.Errorf("frame %d decoded from mid-stream keyframe: PSNR %.1f", i, psnr)
		}
	}
}

// Property: truncating a packet at any byte boundary yields an error, not
// a crash or silent success.
func TestTruncationFuzz(t *testing.T) {
	enc, _ := NewEncoder(32, 32, DefaultParams())
	pkt, _, _ := enc.Encode(randomFrame(32, 32, 9), false)
	for cut := 0; cut < len(pkt)-1; cut += 7 {
		dec, _ := NewDecoder(32, 32)
		if _, err := dec.Decode(pkt[:cut]); err == nil {
			// Some truncations can still parse if the lost bits were
			// trailing padding; require that at least early cuts fail.
			if cut < len(pkt)/2 {
				t.Errorf("truncation at %d/%d decoded without error", cut, len(pkt))
			}
		}
	}
}

// Property: bit-flipping a packet must never panic (errors are fine; some
// flips decode to garbage, which is also fine for a codec without CRCs).
func TestBitFlipNoPanic(t *testing.T) {
	enc, _ := NewEncoder(32, 32, DefaultParams())
	pkt, _, _ := enc.Encode(randomFrame(32, 32, 11), false)
	rng := stats.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), pkt...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 << rng.Intn(8))
		dec, _ := NewDecoder(32, 32)
		dec.Decode(corrupt) // must not panic
	}
}

// Property: P frames never exceed the size of an equivalent I frame by a
// large factor, and a static scene compresses P frames near zero.
func TestStaticSceneCompression(t *testing.T) {
	p := DefaultParams()
	p.GOPLength = 10
	enc, _ := NewEncoder(64, 64, p)
	src := randomFrame(64, 64, 42)
	keyPkt, _, _ := enc.Encode(src, false)
	var pSizes int
	for i := 0; i < 5; i++ {
		pkt, isKey, _ := enc.Encode(src, false) // identical frame
		if isKey {
			t.Fatal("unexpected keyframe")
		}
		pSizes += len(pkt)
	}
	if pSizes/5 > len(keyPkt)/4 {
		t.Errorf("static P frames average %d bytes vs keyframe %d; expected large skip savings", pSizes/5, len(keyPkt))
	}
}
