package vcodec

import "math"

// Quantization: each DCT coefficient is divided by a step size that grows
// with QP (≈2× every 6 steps, as in H.264/HEVC) and with spatial frequency
// (a mild perceptual weighting). Levels are rounded to the nearest integer;
// dequantization multiplies back. This is the codec's only source of loss.

// maxQP bounds the quantization parameter range.
const maxQP = 51

// quantTable returns the 64 step sizes for a given QP.
func quantTable(qp int) *[blockSize * blockSize]float64 {
	if qp < 0 {
		qp = 0
	}
	if qp > maxQP {
		qp = maxQP
	}
	return &quantTables[qp]
}

var quantTables = buildQuantTables()

func buildQuantTables() [maxQP + 1][blockSize * blockSize]float64 {
	var tables [maxQP + 1][blockSize * blockSize]float64
	for qp := 0; qp <= maxQP; qp++ {
		base := 0.625 * math.Pow(2, float64(qp)/6.0)
		for v := 0; v < blockSize; v++ {
			for u := 0; u < blockSize; u++ {
				// Frequency weighting: high-frequency coefficients are
				// quantized more coarsely (perceptually flat-ish ramp).
				w := 1.0 + 0.18*float64(u+v)
				step := base * w
				if step < 1 {
					step = 1
				}
				tables[qp][v*blockSize+u] = step
			}
		}
	}
	return tables
}

// quantize converts DCT coefficients to integer levels.
func quantize(coefs *[blockSize * blockSize]float64, levels *[blockSize * blockSize]int32, qp int) {
	tbl := quantTable(qp)
	for i := range coefs {
		levels[i] = int32(math.Round(coefs[i] / tbl[i]))
	}
}

// dequantize reconstructs approximate coefficients from levels.
func dequantize(levels *[blockSize * blockSize]int32, coefs *[blockSize * blockSize]float64, qp int) {
	tbl := quantTable(qp)
	for i := range levels {
		coefs[i] = float64(levels[i]) * tbl[i]
	}
}
