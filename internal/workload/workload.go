// Package workload generates the six query workloads of the paper's
// incremental-tiling evaluation (§5.3, Figure 11, Table 2). Each workload
// is a deterministic stream of single-object queries with a temporal
// window; the distribution of start frames (uniform or Zipfian), the label
// mix, and the query count follow the paper's descriptions, with window
// lengths scaled to the generated videos ("one-minute queries" over a
// 540–900 s video become proportional windows over our scaled videos).
package workload

import (
	"fmt"

	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/stats"
)

// Query is one workload query: a single-label selection over a frame range.
type Query struct {
	Video string
	Label string
	From  int
	To    int
}

// ToQuery converts to the query package's representation.
func (q Query) ToQuery() query.Query {
	return query.Query{Video: q.Video, Pred: query.Single(q.Label), From: q.From, To: q.To}
}

// SQL renders the query in the evaluation's SELECT form.
func (q Query) SQL() string {
	return fmt.Sprintf("SELECT %s FROM %s WHERE %d <= t < %d", q.Label, q.Video, q.From, q.To)
}

// Workload is a named stream of queries over one video.
type Workload struct {
	Name    string
	Desc    string
	Queries []Query
}

// VideoInfo carries what the generators need to know about a video.
type VideoInfo struct {
	Name      string
	NumFrames int
	FPS       int
	// Classes are the video's primary object classes, most frequent first.
	Classes []string
}

// Info extracts VideoInfo from a scene preset.
func Info(p scene.Preset) VideoInfo {
	return VideoInfo{
		Name:      p.Spec.Name,
		NumFrames: p.Spec.NumFrames(),
		FPS:       p.Spec.FPS,
		Classes:   p.QueryClasses,
	}
}

// windowFrames scales the paper's one-minute query window: one minute of a
// ~9-minute video is ~11% of its length; we use max(1 s, ~11% of frames).
func windowFrames(v VideoInfo) int {
	w := v.NumFrames / 9
	if min := v.FPS; w < min {
		w = min
	}
	if w > v.NumFrames {
		w = v.NumFrames
	}
	return w
}

// clampStart keeps a window inside the video.
func clampStart(start, window, numFrames int) int {
	if start+window > numFrames {
		start = numFrames - window
	}
	if start < 0 {
		start = 0
	}
	return start
}

// W1 — 100 queries for cars, uniformly distributed over the entire video
// (Figure 11(a)).
func W1(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW1)
	win := windowFrames(v)
	wl := Workload{Name: "W1", Desc: "100 uniform car queries"}
	for i := 0; i < 100; i++ {
		start := clampStart(rng.Intn(v.NumFrames), win, v.NumFrames)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: scene.Car, From: start, To: start + win})
	}
	return wl
}

// W2 — 100 queries, 50% cars / 50% people, restricted to the first 25% of
// the video (Figure 11(b)).
func W2(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW2)
	win := windowFrames(v)
	limit := v.NumFrames / 4
	if limit < win {
		limit = win
	}
	wl := Workload{Name: "W2", Desc: "100 car/person queries over first 25%"}
	for i := 0; i < 100; i++ {
		label := scene.Car
		if rng.Float64() < 0.5 {
			label = scene.Person
		}
		start := clampStart(rng.Intn(limit), win, limit)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: label, From: start, To: start + win})
	}
	return wl
}

// W3 — 100 queries: 47.5% cars, 47.5% people, 5% traffic lights, Zipfian
// start frames biased to the beginning of the video (Figure 11(c)).
func W3(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW3)
	win := windowFrames(v)
	zipf := stats.NewZipf(rng, maxInt(v.NumFrames-win, 1), 1.0)
	wl := Workload{Name: "W3", Desc: "100 Zipf queries, 47.5/47.5/5 car/person/traffic_light"}
	for i := 0; i < 100; i++ {
		r := rng.Float64()
		label := scene.Car
		switch {
		case r < 0.475:
			label = scene.Car
		case r < 0.95:
			label = scene.Person
		default:
			label = scene.TrafficLight
		}
		start := clampStart(zipf.Next(), win, v.NumFrames)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: label, From: start, To: start + win})
	}
	return wl
}

// W4 — 200 queries whose target object changes over time: cars, then
// people, then cars again; Zipfian starts (Figure 11(d)).
func W4(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW4)
	win := windowFrames(v)
	zipf := stats.NewZipf(rng, maxInt(v.NumFrames-win, 1), 1.0)
	wl := Workload{Name: "W4", Desc: "200 Zipf queries, car -> person -> car"}
	for i := 0; i < 200; i++ {
		label := scene.Car
		if i >= 66 && i < 133 {
			label = scene.Person
		}
		start := clampStart(zipf.Next(), win, v.NumFrames)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: label, From: start, To: start + win})
	}
	return wl
}

// W5 — 200 one-second queries over dense, diverse scenes, each targeting a
// randomly chosen primary class; uniform starts (Figure 11(e)). Tiling is
// expected not to help here.
func W5(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW5)
	win := minInt(v.FPS, v.NumFrames) // one-second segments
	wl := Workload{Name: "W5", Desc: "200 uniform 1s queries over primary classes (dense)"}
	for i := 0; i < 200; i++ {
		label := v.Classes[rng.Intn(len(v.Classes))]
		start := clampStart(rng.Intn(v.NumFrames), win, v.NumFrames)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: label, From: start, To: start + win})
	}
	return wl
}

// W6 — 200 one-second queries all targeting the same (most frequent)
// class; uniform starts; videos where tiling around the query object helps
// but tiling around all objects hurts (Figure 11(f)).
func W6(v VideoInfo, seed uint64) Workload {
	rng := stats.NewRNG(seed ^ seedW6)
	win := minInt(v.FPS, v.NumFrames)
	wl := Workload{Name: "W6", Desc: "200 uniform 1s queries, single class (dense)"}
	for i := 0; i < 200; i++ {
		start := clampStart(rng.Intn(v.NumFrames), win, v.NumFrames)
		wl.Queries = append(wl.Queries, Query{Video: v.Name, Label: v.Classes[0], From: start, To: start + win})
	}
	return wl
}

// Generator builds a workload for a video.
type Generator func(v VideoInfo, seed uint64) Workload

// ByName returns the generator for a workload name ("W1".."W6").
func ByName(name string) (Generator, bool) {
	switch name {
	case "W1":
		return W1, true
	case "W2":
		return W2, true
	case "W3":
		return W3, true
	case "W4":
		return W4, true
	case "W5":
		return W5, true
	case "W6":
		return W6, true
	}
	return nil, false
}

// Names lists the workloads in paper order.
func Names() []string { return []string{"W1", "W2", "W3", "W4", "W5", "W6"} }

// Labels returns the distinct labels a workload queries.
func (w Workload) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range w.Queries {
		if !seen[q.Label] {
			seen[q.Label] = true
			out = append(out, q.Label)
		}
	}
	return out
}

// Per-workload seed salts keep each workload's RNG stream distinct.
const (
	seedW1 uint64 = 0xA1A1A1A1
	seedW2 uint64 = 0xB2B2B2B2
	seedW3 uint64 = 0xC3C3C3C3
	seedW4 uint64 = 0xD4D4D4D4
	seedW5 uint64 = 0xE5E5E5E5
	seedW6 uint64 = 0xF6F6F6F6
)

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
