package workload

import (
	"testing"

	"github.com/tasm-repro/tasm/internal/scene"
)

func info() VideoInfo {
	return VideoInfo{Name: "v", NumFrames: 480, FPS: 30, Classes: []string{scene.Car, scene.Person}}
}

func checkBounds(t *testing.T, wl Workload, numFrames int) {
	t.Helper()
	for i, q := range wl.Queries {
		if q.From < 0 || q.To > numFrames || q.From >= q.To {
			t.Errorf("%s query %d: invalid range [%d,%d)", wl.Name, i, q.From, q.To)
		}
		if q.Video != "v" {
			t.Errorf("%s query %d: video %q", wl.Name, i, q.Video)
		}
	}
}

func TestW1(t *testing.T) {
	wl := W1(info(), 7)
	if len(wl.Queries) != 100 {
		t.Fatalf("W1 has %d queries", len(wl.Queries))
	}
	checkBounds(t, wl, 480)
	for _, q := range wl.Queries {
		if q.Label != scene.Car {
			t.Fatalf("W1 queried %q", q.Label)
		}
	}
	// Uniform: starts should span most of the video.
	lo, hi := 480, 0
	for _, q := range wl.Queries {
		if q.From < lo {
			lo = q.From
		}
		if q.From > hi {
			hi = q.From
		}
	}
	if hi-lo < 200 {
		t.Errorf("W1 starts span only [%d,%d]", lo, hi)
	}
}

func TestW2RestrictedToFirstQuarter(t *testing.T) {
	wl := W2(info(), 7)
	if len(wl.Queries) != 100 {
		t.Fatalf("W2 has %d queries", len(wl.Queries))
	}
	checkBounds(t, wl, 480)
	labels := map[string]int{}
	for _, q := range wl.Queries {
		labels[q.Label]++
		if q.From >= 480/4 {
			t.Errorf("W2 start %d outside first quarter", q.From)
		}
	}
	if labels[scene.Car] < 30 || labels[scene.Person] < 30 {
		t.Errorf("W2 label mix = %v", labels)
	}
}

func TestW3LabelMixAndSkew(t *testing.T) {
	wl := W3(info(), 7)
	checkBounds(t, wl, 480)
	labels := map[string]int{}
	early := 0
	for _, q := range wl.Queries {
		labels[q.Label]++
		if q.From < 480/4 {
			early++
		}
	}
	if labels[scene.TrafficLight] == 0 || labels[scene.TrafficLight] > 20 {
		t.Errorf("traffic light count = %d", labels[scene.TrafficLight])
	}
	if labels[scene.Car] < 30 || labels[scene.Person] < 30 {
		t.Errorf("label mix = %v", labels)
	}
	// Zipf bias: more than half the queries start in the first quarter.
	if early < 50 {
		t.Errorf("only %d/100 queries start early; expected Zipf bias", early)
	}
}

func TestW4PhaseStructure(t *testing.T) {
	wl := W4(info(), 7)
	if len(wl.Queries) != 200 {
		t.Fatalf("W4 has %d queries", len(wl.Queries))
	}
	checkBounds(t, wl, 480)
	if wl.Queries[0].Label != scene.Car || wl.Queries[100].Label != scene.Person || wl.Queries[199].Label != scene.Car {
		t.Error("W4 phases wrong")
	}
}

func TestW5W6OneSecondWindows(t *testing.T) {
	for _, gen := range []Generator{W5, W6} {
		wl := gen(info(), 7)
		if len(wl.Queries) != 200 {
			t.Fatalf("%s has %d queries", wl.Name, len(wl.Queries))
		}
		checkBounds(t, wl, 480)
		for _, q := range wl.Queries {
			if q.To-q.From != 30 {
				t.Fatalf("%s window = %d frames, want 30 (1s)", wl.Name, q.To-q.From)
			}
		}
	}
	// W6 targets a single class.
	wl := W6(info(), 7)
	for _, q := range wl.Queries {
		if q.Label != scene.Car {
			t.Fatalf("W6 queried %q", q.Label)
		}
	}
	// W5 mixes classes.
	wl = W5(info(), 7)
	if len(wl.Labels()) < 2 {
		t.Error("W5 did not mix classes")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := W3(info(), 42), W3(info(), 42)
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := W3(info(), 43)
	same := true
	for i := range a.Queries {
		if a.Queries[i] != c.Queries[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		gen, ok := ByName(name)
		if !ok || gen == nil {
			t.Errorf("ByName(%s) failed", name)
		}
	}
	if _, ok := ByName("W9"); ok {
		t.Error("ByName(W9) succeeded")
	}
	if len(Names()) != 6 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestToQueryAndSQL(t *testing.T) {
	q := Query{Video: "v", Label: "car", From: 10, To: 20}
	qq := q.ToQuery()
	if qq.Video != "v" || qq.From != 10 || qq.To != 20 {
		t.Errorf("ToQuery = %+v", qq)
	}
	if got := qq.Pred.Labels(); len(got) != 1 || got[0] != "car" {
		t.Errorf("labels = %v", got)
	}
	if q.SQL() != "SELECT car FROM v WHERE 10 <= t < 20" {
		t.Errorf("SQL = %q", q.SQL())
	}
}

func TestShortVideoClamping(t *testing.T) {
	short := VideoInfo{Name: "v", NumFrames: 20, FPS: 30, Classes: []string{scene.Car}}
	for _, gen := range []Generator{W1, W2, W3, W4, W5, W6} {
		wl := gen(short, 1)
		checkBounds(t, wl, 20)
	}
}
