// Package tasm is a tile-based storage manager for video analytics, a
// from-scratch Go reproduction of "TASM: A Tile-Based Storage Manager for
// Video Analytics" (Daum et al., ICDE 2021).
//
// TASM stores video as independently decodable spatial tiles, maintains a
// semantic index of object detections (label + bounding box, clustered on
// (video, label, time)), and physically tunes each video's tile layout to
// the query workload so that object-retrieval queries decode only the
// pixels they need. Layouts can be chosen up front when the workload is
// known (KQKO), evolve lazily as detections arrive, or adapt online with
// the paper's regret-based policy.
//
// Basic usage (API v2: context-first, streaming):
//
//	sm, err := tasm.Open(dir)                        // tile store + semantic index
//	sm.IngestContext(ctx, "traffic", frames, 30)     // untiled, one SOT per GOP
//	sm.AddMetadata("traffic", f, "car", x1, y1, x2, y2)
//	res, stats, err := sm.ScanSQLContext(ctx, "SELECT car FROM traffic WHERE 30 <= t < 90")
//
// Long scans should stream instead of materializing: a cursor yields each
// pixel region in frame order as its tiles decode, with bounded buffering,
// and cancelling ctx stops the decode work and releases every read lease:
//
//	cur, err := sm.ScanCursor(ctx, q)
//	defer cur.Close()
//	for cur.Next() {
//	    consume(cur.Result())
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Failures are classified by exported sentinel errors — ErrVideoNotFound,
// ErrInvalidRange, ErrRetileConflict, … — matchable with errors.Is across
// every layer. The context-free forms (Scan, DecodeFrames, Ingest, …)
// remain as thin wrappers over the context-first ones.
//
// Enable adaptive tiling to let the storage manager re-tile itself in the
// background as it observes queries — every query path (blocking,
// streaming, remote) feeds the observer, and a background goroutine
// applies re-tile decisions under MVCC without blocking queries:
//
//	sm, _ := tasm.Open(dir, tasm.WithAdaptiveTiling())
package tasm

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/tasm-repro/tasm/internal/adapt"
	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/policy"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilecache"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// The error taxonomy: every failure the storage manager reports wraps one
// of these sentinels (use errors.Is to classify, errors.As for rich types
// like *core.PointerRefreshError). This is the stable contract an RPC
// front end maps onto status codes.
var (
	// ErrVideoNotFound: the named video is not in the catalog.
	ErrVideoNotFound = tasmerr.ErrVideoNotFound
	// ErrVideoExists: an ingest under a name that is already stored.
	ErrVideoExists = tasmerr.ErrVideoExists
	// ErrInvalidName: a video name the store refuses.
	ErrInvalidName = tasmerr.ErrInvalidName
	// ErrInvalidRange: a frame range empty or inverted after clamping.
	ErrInvalidRange = tasmerr.ErrInvalidRange
	// ErrSOTNotFound: an operation addressed a SOT id the video lacks.
	ErrSOTNotFound = tasmerr.ErrSOTNotFound
	// ErrVideoDeleted: the operation lost a race with DeleteVideo.
	ErrVideoDeleted = tasmerr.ErrVideoDeleted
	// ErrRetileConflict: a re-tile lost a race with another re-tile.
	ErrRetileConflict = tasmerr.ErrRetileConflict
	// ErrCursorClosed: a cursor was closed before exhaustion.
	ErrCursorClosed = tasmerr.ErrCursorClosed
	// ErrNoFrames: an ingest of an empty frame sequence.
	ErrNoFrames = tasmerr.ErrNoFrames
	// ErrStoreLocked: the storage directory's cross-process ownership
	// lease is held by another process (typically a live tasmd). Open
	// with WithForceOpen only to recover a store whose owner is gone.
	ErrStoreLocked = tasmerr.ErrStoreLocked
	// ErrAutotileDisabled: an autotile control call (pause, resume, kick)
	// on a storage manager opened without WithAdaptiveTiling.
	ErrAutotileDisabled = tasmerr.ErrAutotileDisabled
	// ErrTileCorrupt: stored bytes failed integrity verification — a
	// tile file no longer matches the CRC32C sealed into the catalog
	// when it was written, or no longer parses. RepairStore (or
	// `tasmctl fsck -repair`) quarantines the damaged version and falls
	// back to an earlier intact one when the store still holds it.
	ErrTileCorrupt = tasmerr.ErrTileCorrupt
	// ErrShardUnavailable: a scale-out operation could not reach the
	// tasmd shard owning the addressed video — its breaker is open
	// after consecutive failures, or the request died at the transport
	// layer. Returned by tasm-router (and surfaced through client/);
	// a single-node storage manager never produces it.
	ErrShardUnavailable = tasmerr.ErrShardUnavailable
	// ErrIngestBackpressure: a live append found the video's bounded
	// commit queue full. Nothing was written; the append is safe to
	// retry after a short delay. The serving layer maps it to HTTP 429
	// with a Retry-After header.
	ErrIngestBackpressure = tasmerr.ErrIngestBackpressure
	// ErrVideoSealed: an append-path operation (AppendGOP, SealVideo,
	// SetRetention) addressed a video that is not live — batch-ingested,
	// or already sealed. Sealing is one-way.
	ErrVideoSealed = tasmerr.ErrVideoSealed
)

// Re-exported building blocks. These are aliases so values returned by the
// storage manager interoperate with user code without conversion.
type (
	// Frame is a planar YCbCr 4:2:0 video frame.
	Frame = frame.Frame
	// Rect is a half-open pixel rectangle.
	Rect = geom.Rect
	// Detection is a labeled bounding box on one frame.
	Detection = semindex.Detection
	// Layout is a tile layout: rows and columns spanning the frame.
	Layout = layout.Layout
	// Query is a parsed Scan request.
	Query = query.Query
	// Predicate is a CNF label predicate.
	Predicate = query.Predicate
	// RegionResult is one retrieved pixel region.
	RegionResult = core.RegionResult
	// ScanStats reports the work a Scan performed.
	ScanStats = core.ScanStats
	// RetileStats reports the work of a re-tiling operation.
	RetileStats = core.RetileStats
	// IngestStats reports the work of an ingest.
	IngestStats = core.IngestStats
	// Cursor streams a Scan's pixel regions in frame order as they
	// decode (see StorageManager.ScanCursor).
	Cursor = core.ScanCursor
	// FrameCursor streams whole reassembled frames in order (see
	// StorageManager.DecodeFramesCursor).
	FrameCursor = core.FrameCursor
	// FrameResult is one streamed whole frame: absolute index + pixels.
	FrameResult = core.FrameResult
	// VideoMeta is a stored video's catalog record.
	VideoMeta = tilestore.VideoMeta
	// SOTMeta describes one sequence of tiles.
	SOTMeta = tilestore.SOTMeta
	// RetentionPolicy bounds how much history a live video keeps.
	RetentionPolicy = tilestore.RetentionPolicy
	// TrimReport describes what one retention trim removed.
	TrimReport = tilestore.TrimReport
	// AppendStats reports the work of one AppendGOP call.
	AppendStats = core.AppendStats
	// SubscribeCursor is a live tail over a video's committed frames
	// (see StorageManager.Subscribe).
	SubscribeCursor = core.SubscribeCursor
)

// NewFrame allocates a zeroed frame with even dimensions.
func NewFrame(w, h int) *Frame { return frame.New(w, h) }

// R constructs a rectangle covering [x0,x1) x [y0,y1).
func R(x0, y0, x1, y1 int) Rect { return geom.R(x0, y0, x1, y1) }

// PSNR returns the luma peak signal-to-noise ratio between two frames.
func PSNR(a, b *Frame) float64 { return frame.PSNR(a, b) }

// SequencePSNR returns the PSNR over two equal-length frame sequences.
func SequencePSNR(a, b []*Frame) float64 { return frame.SequencePSNR(a, b) }

// ParseQuery parses "SELECT <predicate> FROM <video> [WHERE <time>]".
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// ParsePredicate parses a CNF label predicate such as
// "(car OR bicycle) AND red".
func ParsePredicate(s string) (Predicate, error) { return query.ParsePredicate(s) }

// Granularity selects fine- or coarse-grained non-uniform layouts.
type Granularity = layout.Granularity

// Granularity values.
const (
	Fine   = layout.Fine
	Coarse = layout.Coarse
)

// Option configures a storage manager.
type Option func(*settings)

type settings struct {
	cfg      core.Config
	adaptive bool
	autotile adapt.Config
}

// WithQP sets the codec quantization parameter (default 22; higher is
// smaller and lossier).
func WithQP(qp int) Option {
	return func(s *settings) { s.cfg.Codec.QP = qp }
}

// WithGOPLength sets the keyframe interval in frames; SOTs span one GOP.
func WithGOPLength(frames int) Option {
	return func(s *settings) { s.cfg.Codec.GOPLength = frames }
}

// WithAlpha sets the do-not-tile threshold on P(L)/P(ω) (default 0.8).
func WithAlpha(alpha float64) Option {
	return func(s *settings) { s.cfg.Alpha = alpha }
}

// WithEta sets the regret policy's retile threshold multiplier (default 1).
func WithEta(eta float64) Option {
	return func(s *settings) { s.cfg.Eta = eta }
}

// WithGranularity selects fine or coarse non-uniform layouts (default
// Fine).
func WithGranularity(g Granularity) Option {
	return func(s *settings) { s.cfg.Granularity = g }
}

// WithMinTileSize sets the smallest legal tile (default 64×64).
func WithMinTileSize(w, h int) Option {
	return func(s *settings) { s.cfg.MinTileW, s.cfg.MinTileH = w, h }
}

// WithParallelism bounds concurrent tile decodes within one Scan or
// DecodeFrames call. Decode jobs fan out across every (SOT, tile) pair the
// request touches, so long time ranges scale even when each SOT needs only
// one tile. The paper's prototype decodes tiles sequentially (the default,
// 1); higher values are an extension of this reproduction.
func WithParallelism(n int) Option {
	return func(s *settings) { s.cfg.Parallelism = n }
}

// WithCacheBudget enables the in-memory cache of decoded tile GOPs,
// bounded to the given number of bytes. Repeated scans over the same
// regions (the dominant pattern in analytics workloads) then skip the
// decode entirely and pay only pixel assembly. The cache is invalidated
// automatically when a SOT is re-tiled or a video deleted. A budget of 0
// (the default) disables caching, matching the paper's prototype.
func WithCacheBudget(bytes int64) Option {
	return func(s *settings) { s.cfg.CacheBudget = bytes }
}

// WithAdaptiveTiling enables the background adaptive-tiling subsystem
// (paper §4.4): every query — blocking, streaming, or served remotely —
// feeds a lock-cheap observer, and a background goroutine folds the
// observations into the regret policy and applies its re-tile decisions
// under MVCC. Queries never wait on re-tiling; in-flight scans keep
// reading their snapshots while layouts change underneath. Control and
// inspect the subsystem with AutotileStatus, AutotilePause,
// AutotileResume, and AutotileKick (or their tasmctl / HTTP
// counterparts).
func WithAdaptiveTiling() Option {
	return func(s *settings) { s.adaptive = true }
}

// WithRetileIOBudget caps the background re-tiler's sustained write rate
// in bytes per second: after committing a re-tile the loop idles long
// enough that, on average, committed bytes stay at or below the budget,
// keeping background churn from starving foreground I/O. 0 (the default)
// is unthrottled. Implies nothing unless WithAdaptiveTiling is also set.
func WithRetileIOBudget(bytesPerSec int64) Option {
	return func(s *settings) { s.autotile.IOBudget = bytesPerSec }
}

// WithAutotileInterval sets the background re-tiler's poll cadence
// (default 500ms). Shorter reacts faster; longer batches more
// observations per decision cycle.
func WithAutotileInterval(d time.Duration) Option {
	return func(s *settings) { s.autotile.Interval = d }
}

// WithAutotileLogger directs the background re-tiler's action and pause
// diagnostics to logger (default: silent).
func WithAutotileLogger(logger *log.Logger) Option {
	return func(s *settings) { s.autotile.Logger = logger }
}

// WithAppendQueueDepth bounds how many live-append commits may be
// pending per video before AppendGOP refuses with ErrIngestBackpressure
// (default 4). Deeper queues smooth burstier producers at the cost of
// more buffered frames in memory.
func WithAppendQueueDepth(n int) Option {
	return func(s *settings) { s.cfg.AppendQueueDepth = n }
}

// WithForceOpen skips the storage directory's cross-process ownership
// lease. By default Open takes an exclusive flock on the store, so a
// second opener — a tasmctl -dir pointed at a live tasmd's directory —
// fails fast with ErrStoreLocked instead of reading stale caches. Force
// is the recovery escape hatch (lock holder unreachable, say a hung
// process on a shared mount); against a live owner it reintroduces
// exactly the stale-cache corruption the lease exists to prevent.
func WithForceOpen() Option {
	return func(s *settings) { s.cfg.ForceOpen = true }
}

// WithRequestCacheBudget returns a context capping how many bytes of
// newly decoded tiles the operations run under it may insert into the
// shared decoded-tile cache (0 = insert nothing). Reads still hit the
// cache — the budget bounds pollution, not reuse: a one-off sequential
// sweep run under a zero budget cannot evict the working set repeated
// queries depend on. Remote callers set the same knob per request with
// the Tasm-Cache-Budget header (client.WithCacheBudget).
func WithRequestCacheBudget(ctx context.Context, bytes int64) context.Context {
	return core.WithCacheAdmissionBudget(ctx, bytes)
}

// StorageManager is TASM: the tile-aware bottom layer of a VDBMS.
type StorageManager struct {
	m       *core.Manager
	retiler *adapt.Retiler // nil unless WithAdaptiveTiling
}

// Open creates or opens a storage manager rooted at dir.
func Open(dir string, opts ...Option) (*StorageManager, error) {
	s := settings{cfg: core.DefaultConfig()}
	for _, opt := range opts {
		opt(&s)
	}
	m, err := core.Open(dir, s.cfg)
	if err != nil {
		return nil, err
	}
	sm := &StorageManager{m: m}
	if s.adaptive {
		// Warm-and-pin only pays off when there is a cache to warm.
		s.autotile.Warm = s.cfg.CacheBudget > 0
		sm.retiler = adapt.NewRetiler(m, nil, s.autotile)
		m.SetQueryObserver(sm.retiler)
		sm.retiler.Start()
	}
	return sm, nil
}

// Close stops the background re-tiler (waiting out any in-flight re-tile's
// atomic commit), then flushes and closes the semantic index.
func (s *StorageManager) Close() error {
	if s.retiler != nil {
		s.retiler.Close()
	}
	return s.m.Close()
}

// AutotileStatus is a point-in-time snapshot of the background
// adaptive-tiling subsystem.
type AutotileStatus = adapt.Status

// AutotileStatus snapshots the background re-tiler. With adaptive tiling
// disabled it returns the zero Status (Enabled false).
func (s *StorageManager) AutotileStatus() AutotileStatus {
	if s.retiler == nil {
		return AutotileStatus{}
	}
	return s.retiler.Status()
}

// AutotilePause suspends background re-tiling; observation continues, so
// evidence keeps accumulating for when it resumes. reason is surfaced in
// AutotileStatus (empty = a generic operator message).
func (s *StorageManager) AutotilePause(reason string) error {
	if s.retiler == nil {
		return fmt.Errorf("tasm: %w", ErrAutotileDisabled)
	}
	s.retiler.Pause(reason)
	return nil
}

// AutotileResume lifts a pause — operator-initiated or the loop's own
// pause-on-error — and immediately kicks a decision cycle.
func (s *StorageManager) AutotileResume() error {
	if s.retiler == nil {
		return fmt.Errorf("tasm: %w", ErrAutotileDisabled)
	}
	s.retiler.Resume()
	return nil
}

// AutotileKick synchronously drains all pending observations through the
// decision layer and applies the resulting re-tiles, returning how many
// were applied. The background loop does the same on its own clock; Kick
// exists for tests, benchmarks, and one-shot tools that need determinism.
func (s *StorageManager) AutotileKick(ctx context.Context) (int, error) {
	if s.retiler == nil {
		return 0, fmt.Errorf("tasm: %w", ErrAutotileDisabled)
	}
	return s.retiler.Kick(ctx)
}

// Ingest stores frames as a new untiled video (one SOT per GOP).
func (s *StorageManager) Ingest(video string, frames []*Frame, fps int) (IngestStats, error) {
	return s.m.Ingest(video, frames, fps)
}

// IngestContext is Ingest under a context: cancellation aborts the
// encode within one frame's work and leaves no partial video behind.
func (s *StorageManager) IngestContext(ctx context.Context, video string, frames []*Frame, fps int) (IngestStats, error) {
	return s.m.IngestContext(ctx, video, frames, fps)
}

// IngestTiled stores frames with caller-chosen per-SOT layouts, the edge
// camera upload path.
func (s *StorageManager) IngestTiled(video string, frames []*Frame, fps int, layouts []Layout) (IngestStats, error) {
	return s.m.IngestTiled(video, frames, fps, layouts)
}

// IngestTiledContext is IngestTiled under a context.
func (s *StorageManager) IngestTiledContext(ctx context.Context, video string, frames []*Frame, fps int, layouts []Layout) (IngestStats, error) {
	return s.m.IngestTiledContext(ctx, video, frames, fps, layouts)
}

// CreateLiveVideo opens an open-ended video in append mode: it starts
// empty and grows one GOP at a time via AppendGOP until SealVideo
// converts it to an ordinary batch video. pol (optional) bounds how
// much history the store keeps; expired SOTs age out through the same
// tombstone machinery re-tiling uses, so in-flight reads finish on
// their snapshots.
func (s *StorageManager) CreateLiveVideo(video string, w, h, fps int, pol *RetentionPolicy) error {
	return s.m.CreateLiveVideo(video, w, h, fps, pol)
}

// AppendGOP appends frames to a live video. Frames are chunked into
// SOTs of the configured GOP length; each completed SOT becomes
// visible to readers atomically at its manifest commit, so a crash
// mid-append loses at most the uncommitted tail, never a torn SOT.
// When the video's bounded commit queue is full the call fails fast
// with ErrIngestBackpressure and writes nothing.
func (s *StorageManager) AppendGOP(video string, frames []*Frame) (AppendStats, error) {
	return s.m.AppendGOP(video, frames)
}

// AppendGOPContext is AppendGOP under a context: expiry while waiting
// on the commit queue returns ctx's error (an already-ordered commit
// still completes).
func (s *StorageManager) AppendGOPContext(ctx context.Context, video string, frames []*Frame) (AppendStats, error) {
	return s.m.AppendGOPContext(ctx, video, frames)
}

// SealVideo converts a live video into an ordinary batch video:
// further appends fail with ErrVideoSealed, and tails that have caught
// up terminate cleanly instead of waiting for more commits. Sealing is
// one-way.
func (s *StorageManager) SealVideo(video string) error {
	return s.m.SealVideo(video)
}

// SetRetention replaces a live video's retention policy (nil clears
// it) and immediately trims whatever the new policy expires.
func (s *StorageManager) SetRetention(video string, pol *RetentionPolicy) (TrimReport, error) {
	return s.m.SetRetention(video, pol)
}

// TrimExpired applies a live video's retention policy now. Appends run
// it automatically; this is for operators reclaiming space on an idle
// stream.
func (s *StorageManager) TrimExpired(video string) (TrimReport, error) {
	return s.m.TrimExpired(video)
}

// Subscribe opens a live tail on video starting at frame from
// (clamped to the retention horizon): the cursor yields every frame
// committed at or after its watermark in order, exactly once, blocking
// in Next while it is caught up and waking as appends commit. On a
// sealed video the cursor drains the remaining frames and terminates
// cleanly, so replaying history and tailing new commits are the same
// operation. Cancel ctx or Close to stop; deleting the video cancels
// the subscription with ErrVideoDeleted.
func (s *StorageManager) Subscribe(ctx context.Context, video string, from int) (*SubscribeCursor, error) {
	return s.m.Subscribe(ctx, video, from)
}

// AddMetadata records an object detection produced during query processing
// (the paper's AddMetadata(video, frame, label, x1, y1, x2, y2)).
func (s *StorageManager) AddMetadata(video string, frameIdx int, label string, x1, y1, x2, y2 int) error {
	return s.m.AddMetadata(video, frameIdx, label, x1, y1, x2, y2)
}

// AddDetections records a batch of detections.
func (s *StorageManager) AddDetections(video string, ds []Detection) error {
	return s.m.AddDetections(video, ds)
}

// MarkDetected records that frames [from, to) of video have been fully
// processed by an object detector for label, so absence of detections
// there is definitive. The lazy tiling policy relies on this.
func (s *StorageManager) MarkDetected(video, label string, from, to int) error {
	return s.m.Index().MarkDetected(video, label, from, to)
}

// Scan answers a query: it returns the pixel regions matching the query's
// label predicate within its time range, decoding only the tiles that
// contain them. With adaptive tiling enabled, the query feeds the
// background observer; re-tiling happens asynchronously, never on the
// query path.
func (s *StorageManager) Scan(q Query) ([]RegionResult, ScanStats, error) {
	return s.ScanContext(context.Background(), q)
}

// ScanContext is Scan under a context: cancellation or deadline expiry
// stops in-flight tile decodes within one frame's work, releases every
// read lease the request holds, and returns an error wrapping ctx.Err().
//
// A multi-video query ("FROM a,b") scans each video in turn and merges
// the results into one globally frame-ordered slice: regions sharing a
// frame number keep FROM-list order between videos and scan order
// within one — the same ordering the serving layer's streaming merge
// produces, so local and remote multi-video results are identical.
func (s *StorageManager) ScanContext(ctx context.Context, q Query) ([]RegionResult, ScanStats, error) {
	vids := q.VideoList()
	if len(vids) == 1 {
		return s.m.ScanContext(ctx, q)
	}
	var all []RegionResult
	var agg ScanStats
	for _, v := range vids {
		sq := q
		sq.Video, sq.Videos = v, nil
		rs, st, err := s.m.ScanContext(ctx, sq)
		agg = addScanStats(agg, st)
		if err != nil {
			return nil, agg, err
		}
		all = append(all, rs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Frame < all[j].Frame })
	return all, agg, nil
}

// addScanStats folds one per-video stats record into a running total:
// every field is additive (walls sum sequential per-video work).
func addScanStats(a, b ScanStats) ScanStats {
	a.IndexWall += b.IndexWall
	a.DecodeWall += b.DecodeWall
	a.AssembleWall += b.AssembleWall
	a.PixelsDecoded += b.PixelsDecoded
	a.TilesDecoded += b.TilesDecoded
	a.FramesDecoded += b.FramesDecoded
	a.RegionsReturned += b.RegionsReturned
	a.SOTsTouched += b.SOTsTouched
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.CacheEvictions += b.CacheEvictions
	return a
}

// ScanCursor starts a streaming Scan: pixel regions are yielded in frame
// order as each SOT's tiles decode, with bounded buffering for
// backpressure, instead of materializing every region up front. The
// caller must drain the cursor or Close it; either way all read leases
// are released by the time Next reports false (or Close returns).
// Streaming scans feed the adaptive-tiling observer exactly like blocking
// ones: every query path funnels through the same cursor construction.
//
// A local streaming cursor serves one video. Multi-video queries are
// merged above the engine — drain ScanContext, or scan through tasmd /
// tasm-router, whose serving layer merges per-video cursors into one
// frame-ordered stream — so a multi-video query here is rejected
// (wrapping ErrInvalidName) rather than silently scanning only the
// first video.
func (s *StorageManager) ScanCursor(ctx context.Context, q Query) (*Cursor, error) {
	if vids := q.VideoList(); len(vids) > 1 {
		return nil, fmt.Errorf("%w: a local streaming cursor serves one video, query names %d (drain ScanContext, or scan through tasmd/tasm-router)", tasmerr.ErrInvalidName, len(vids))
	}
	return s.m.ScanCursor(ctx, q)
}

// ScanSQL parses and executes a query in the evaluation's SELECT form.
func (s *StorageManager) ScanSQL(sql string) ([]RegionResult, ScanStats, error) {
	return s.ScanSQLContext(context.Background(), sql)
}

// ScanSQLContext is ScanSQL under a context.
func (s *StorageManager) ScanSQLContext(ctx context.Context, sql string) ([]RegionResult, ScanStats, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, ScanStats{}, err
	}
	return s.ScanContext(ctx, q)
}

// ScanSQLCursor parses a SELECT query and starts a streaming Scan.
func (s *StorageManager) ScanSQLCursor(ctx context.Context, sql string) (*Cursor, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ScanCursor(ctx, q)
}

// DecodeFrames decodes and reassembles whole frames [from, to), regardless
// of tiling — the path object detectors run on.
func (s *StorageManager) DecodeFrames(video string, from, to int) ([]*Frame, ScanStats, error) {
	return s.m.DecodeFrames(video, from, to)
}

// DecodeFramesContext is DecodeFrames under a context.
func (s *StorageManager) DecodeFramesContext(ctx context.Context, video string, from, to int) ([]*Frame, ScanStats, error) {
	return s.m.DecodeFramesContext(ctx, video, from, to)
}

// DecodeFramesCursor streams whole reassembled frames in order as each
// SOT's tiles decode — the path a detector pipelines on, consuming frame
// k while frame k+GOP is still decoding. The caller must drain the
// cursor or Close it.
func (s *StorageManager) DecodeFramesCursor(ctx context.Context, video string, from, to int) (*FrameCursor, error) {
	return s.m.FrameCursor(ctx, video, from, to)
}

// Meta returns a stored video's catalog record (frame count, SOTs, current
// layouts).
func (s *StorageManager) Meta(video string) (VideoMeta, error) { return s.m.Meta(video) }

// Videos lists stored video names.
func (s *StorageManager) Videos() ([]string, error) { return s.m.Store().ListVideos() }

// VideoBytes returns a video's total storage footprint in bytes.
func (s *StorageManager) VideoBytes(video string) (int64, error) { return s.m.VideoBytes(video) }

// DeleteVideo removes a stored video: its tiles, its semantic-index
// records, and any cached decodes. A video later ingested under the same
// name starts completely fresh.
func (s *StorageManager) DeleteVideo(video string) error { return s.m.DeleteVideo(video) }

// CacheStats reports the decoded-tile cache's cumulative counters (all
// zero unless WithCacheBudget enabled the cache).
type CacheStats = tilecache.Stats

// CacheStats snapshots the decoded-tile cache counters.
func (s *StorageManager) CacheStats() CacheStats { return s.m.CacheStats() }

// GCReport describes what one storage GC pass reclaimed.
type GCReport = tilestore.GCReport

// FsckReport summarizes a store consistency check.
type FsckReport = tilestore.FsckReport

// GC reclaims dead storage: SOT version directories superseded by a
// re-tile, staging debris from interrupted writes, and orphan directories
// left by a crashed ingest. Versions still pinned by in-flight reads are
// reported as deferred and reclaimed when those reads finish.
func (s *StorageManager) GC() (GCReport, error) { return s.m.Store().GC() }

// FSCK verifies every stored video's manifest against the tile files on
// disk (existence, decodability, frame counts, dimensions) and reports
// orphan directories that GC would reclaim. It never repairs.
func (s *StorageManager) FSCK() (FsckReport, error) { return s.m.Store().FSCK() }

// RepairPointers re-materializes the semantic index's box→tile pointers
// from a video's live layouts — the recovery path after a re-tile whose
// pointer refresh failed (see core.PointerRefreshError).
func (s *StorageManager) RepairPointers(video string) error { return s.m.RepairPointers(video) }

// RepairReport describes what one RepairStore pass changed.
type RepairReport = tilestore.RepairReport

// RepairStore validates every SOT's live tiles against the checksums
// sealed into the catalog, quarantines corrupt version directories into
// the tombstone area, and falls back to the newest earlier version that
// still verifies, re-aiming caches and box→tile pointers at the adopted
// layout. SOTs with no intact fallback stay referenced (and keep
// failing FSCK) so data loss stays visible. This is the repair half of
// `tasmctl fsck -repair`.
func (s *StorageManager) RepairStore() (RepairReport, error) { return s.m.RepairStore() }

// RepairStoreContext is RepairStore under a context, checked before the
// pass starts (the pass itself is a single store-wide critical section).
func (s *StorageManager) RepairStoreContext(ctx context.Context) (RepairReport, error) {
	if err := ctx.Err(); err != nil {
		return RepairReport{}, err
	}
	return s.m.RepairStore()
}

// StoreMetrics is a snapshot of the store's durability counters.
type StoreMetrics = tilestore.Metrics

// StoreMetrics snapshots the tile store's durability counters: tiles
// that failed integrity verification since open, and recovery sweeps
// run at open.
func (s *StorageManager) StoreMetrics() StoreMetrics { return s.m.Store().Metrics() }

// Labels returns the distinct labels indexed for a video.
func (s *StorageManager) Labels(video string) ([]string, error) { return s.m.Index().Labels(video) }

// LookupDetections returns indexed detections for (video, label) within
// [fromFrame, toFrame).
func (s *StorageManager) LookupDetections(video, label string, fromFrame, toFrame int) ([]Detection, error) {
	entries, err := s.m.Index().Lookup(video, label, fromFrame, toFrame)
	if err != nil {
		return nil, err
	}
	out := make([]Detection, len(entries))
	for i, e := range entries {
		out[i] = e.Detection
	}
	return out, nil
}

// RetileSOT re-encodes one SOT with the given layout.
func (s *StorageManager) RetileSOT(video string, sotID int, l Layout) (RetileStats, error) {
	return s.m.RetileSOT(video, sotID, l)
}

// RetileSOTContext is RetileSOT under a context: cancellation aborts the
// decode/re-encode with nothing committed; once the atomic tile swap
// begins it completes.
func (s *StorageManager) RetileSOTContext(ctx context.Context, video string, sotID int, l Layout) (RetileStats, error) {
	return s.m.RetileSOTContext(ctx, video, sotID, l)
}

// DesignLayout partitions a SOT around the indexed boxes of the given
// labels (fine- or coarse-grained per the manager's configuration),
// returning the untiled layout when tiling cannot help.
func (s *StorageManager) DesignLayout(video string, sotID int, labels []string) (Layout, error) {
	meta, err := s.m.Meta(video)
	if err != nil {
		return Layout{}, err
	}
	for _, sot := range meta.SOTs {
		if sot.ID != sotID {
			continue
		}
		var boxes []Rect
		for _, label := range labels {
			bs, err := s.m.Index().LookupBoxes(video, label, sot.From, sot.To)
			if err != nil {
				return Layout{}, err
			}
			boxes = append(boxes, bs...)
		}
		cfg := s.m.Config()
		return layout.Partition(boxes, cfg.Granularity, cfg.Constraints(meta.W, meta.H))
	}
	return Layout{}, fmt.Errorf("tasm: %w: video %q has no SOT %d", ErrSOTNotFound, video, sotID)
}

// PlanKQKO computes the known-queries/known-objects plan for a workload
// and applies it (paper §4.2). It returns the number of SOTs re-tiled.
func (s *StorageManager) PlanKQKO(video string, workload []Query) (int, error) {
	return s.PlanKQKOContext(context.Background(), video, workload)
}

// PlanKQKOContext is PlanKQKO under a context; cancellation stops between
// (or within) re-tiles, leaving completed ones committed.
func (s *StorageManager) PlanKQKOContext(ctx context.Context, video string, workload []Query) (int, error) {
	k := policy.NewKQKO()
	cfg := s.m.Config()
	k.Granularity = cfg.Granularity
	k.Alpha = cfg.Alpha
	actions, err := k.Plan(s.m, video, workload)
	if err != nil {
		return 0, err
	}
	if _, err := policy.Apply(ctx, s.m, actions); err != nil {
		return 0, err
	}
	return len(actions), nil
}

// PretileAllObjects tiles every SOT around all indexed objects (the
// paper's "all objects" baseline). It returns the number of SOTs re-tiled.
func (s *StorageManager) PretileAllObjects(video string) (int, error) {
	return s.PretileAllObjectsContext(context.Background(), video)
}

// PretileAllObjectsContext is PretileAllObjects under a context.
func (s *StorageManager) PretileAllObjectsContext(ctx context.Context, video string) (int, error) {
	actions, err := policy.AllObjects(s.m, video, s.m.Config().Granularity)
	if err != nil {
		return 0, err
	}
	if _, err := policy.Apply(ctx, s.m, actions); err != nil {
		return 0, err
	}
	return len(actions), nil
}

// Detected reports whether frames [from, to) of video have been fully
// processed by a detector for label (see MarkDetected).
func (s *StorageManager) Detected(video, label string, from, to int) (bool, error) {
	return s.m.Index().DetectedAll(video, label, from, to)
}

// LazyTiler drives the paper's lazy-detection tiling strategy (§4.3): the
// query classes OQ are known upfront, and each SOT is tiled with KQKO as
// soon as the semantic index holds complete locations for OQ in its range.
type LazyTiler struct {
	p *policy.LazyKnownQueries
	m *core.Manager
}

// NewLazyTiler returns a lazy tiler for the known query classes.
func (s *StorageManager) NewLazyTiler(queryClasses []string) *LazyTiler {
	p := policy.NewLazyKnownQueries(queryClasses)
	cfg := s.m.Config()
	p.Granularity = cfg.Granularity
	p.Alpha = cfg.Alpha
	return &LazyTiler{p: p, m: s.m}
}

// ObserveQuery is called after a query's detections have been indexed; it
// re-tiles any SOTs whose object locations have become fully known and
// returns how many were re-tiled.
func (lt *LazyTiler) ObserveQuery(q Query) (int, error) {
	return lt.ObserveQueryContext(context.Background(), q)
}

// ObserveQueryContext is ObserveQuery under a context.
func (lt *LazyTiler) ObserveQueryContext(ctx context.Context, q Query) (int, error) {
	actions, err := lt.p.ObserveQuery(lt.m, q)
	if err != nil {
		return 0, err
	}
	if _, err := policy.Apply(ctx, lt.m, actions); err != nil {
		return 0, err
	}
	return len(actions), nil
}

// UniformLayout builds an aligned rows×cols layout for a stored video.
func (s *StorageManager) UniformLayout(video string, rows, cols int) (Layout, error) {
	meta, err := s.m.Meta(video)
	if err != nil {
		return Layout{}, err
	}
	cfg := s.m.Config()
	return layout.Uniform(rows, cols, cfg.Constraints(meta.W, meta.H))
}

// ExportStitched homomorphically stitches one SOT's tiles into a single
// serialized video stream without transcoding.
func (s *StorageManager) ExportStitched(video string, sotID int) ([]byte, error) {
	return s.ExportStitchedContext(context.Background(), video, sotID)
}

// ExportStitchedContext is ExportStitched under a context.
func (s *StorageManager) ExportStitchedContext(ctx context.Context, video string, sotID int) ([]byte, error) {
	st, err := s.m.StitchSOTContext(ctx, video, sotID)
	if err != nil {
		return nil, err
	}
	return st.Bytes(), nil
}

// DecodeStitched decodes a stream produced by ExportStitched back into
// full frames.
func DecodeStitched(data []byte) ([]*Frame, error) {
	st, err := container.ParseStitched(data)
	if err != nil {
		return nil, err
	}
	frames, _, err := st.DecodeRange(0, st.FrameCount())
	return frames, err
}

// CostModel exposes the calibrated decode cost model C = β·P + γ·T.
type CostModel = costmodel.Model

// DefaultCostModel returns the default cost coefficients.
func DefaultCostModel() CostModel { return costmodel.Default() }
