package tasm

import (
	"context"
	"testing"

	"github.com/tasm-repro/tasm/internal/scene"
)

// makeVideo renders a small traffic scene and returns it with ground truth.
func makeVideo(t *testing.T) *scene.Video {
	t.Helper()
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.16},
			{Class: scene.Person, Count: 1, SizeFrac: 0.25},
		},
		Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func openManager(t *testing.T, opts ...Option) (*StorageManager, *scene.Video) {
	t.Helper()
	opts = append([]Option{WithGOPLength(10), WithMinTileSize(32, 32)}, opts...)
	sm, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	v := makeVideo(t)
	if _, err := sm.Ingest("traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := sm.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sm, v
}

func TestEndToEndScan(t *testing.T) {
	sm, _ := openManager(t)
	res, st, err := sm.ScanSQL("SELECT car FROM traffic WHERE 0 <= t < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if st.PixelsDecoded == 0 || st.DecodeWall == 0 {
		t.Errorf("stats = %+v", st)
	}
	for _, r := range res {
		if r.Pixels == nil || r.Region.Empty() {
			t.Error("malformed region result")
		}
	}
}

func TestScanSQLParseError(t *testing.T) {
	sm, _ := openManager(t)
	if _, _, err := sm.ScanSQL("garbage"); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestDesignAndRetile(t *testing.T) {
	sm, _ := openManager(t)
	l, err := sm.DesignLayout("traffic", 0, []string{"car"})
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSingle() {
		t.Fatal("expected a tiled layout for sparse video")
	}
	_, before, _ := sm.ScanSQL("SELECT car FROM traffic WHERE 0 <= t < 10")
	if _, err := sm.RetileSOT("traffic", 0, l); err != nil {
		t.Fatal(err)
	}
	_, after, _ := sm.ScanSQL("SELECT car FROM traffic WHERE 0 <= t < 10")
	if after.PixelsDecoded >= before.PixelsDecoded {
		t.Errorf("retile did not reduce pixels: %d -> %d", before.PixelsDecoded, after.PixelsDecoded)
	}
	if _, err := sm.DesignLayout("traffic", 99, []string{"car"}); err == nil {
		t.Error("absent SOT accepted")
	}
}

func TestPlanKQKO(t *testing.T) {
	sm, _ := openManager(t)
	q, err := ParseQuery("SELECT car FROM traffic WHERE 0 <= t < 20")
	if err != nil {
		t.Fatal(err)
	}
	n, err := sm.PlanKQKO("traffic", []Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("KQKO planned nothing")
	}
	meta, _ := sm.Meta("traffic")
	if meta.SOTs[0].L.IsSingle() {
		t.Error("SOT 0 still untiled after KQKO")
	}
}

func TestPretileAllObjects(t *testing.T) {
	sm, _ := openManager(t)
	n, err := sm.PretileAllObjects("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("retiled %d SOTs, want 3", n)
	}
}

func TestAdaptiveTiling(t *testing.T) {
	sm, _ := openManager(t, WithAdaptiveTiling(), WithEta(0))
	// With η=0, the first query is evidence enough to retile the touched
	// SOT; Kick runs the background decision cycle synchronously.
	if _, _, err := sm.ScanSQL("SELECT car FROM traffic WHERE 0 <= t < 10"); err != nil {
		t.Fatal(err)
	}
	if n, err := sm.AutotileKick(context.Background()); err != nil {
		t.Fatal(err)
	} else if n == 0 {
		t.Fatal("AutotileKick applied nothing with eta=0")
	}
	meta, _ := sm.Meta("traffic")
	if meta.SOTs[0].L.IsSingle() {
		t.Error("adaptive tiling did not retile after query with eta=0")
	}
	if meta.SOTs[2].L.IsSingle() == false {
		t.Error("adaptive tiling touched an unqueried SOT")
	}
}

func TestStitchExportRoundTrip(t *testing.T) {
	sm, v := openManager(t)
	l, _ := sm.DesignLayout("traffic", 0, []string{"car", "person"})
	sm.RetileSOT("traffic", 0, l)
	data, err := sm.ExportStitched("traffic", 0)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := DecodeStitched(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	if psnr := PSNR(v.Frame(0), frames[0]); psnr < 26 {
		t.Errorf("stitched PSNR = %.1f", psnr)
	}
}

func TestMetaAndListing(t *testing.T) {
	sm, _ := openManager(t)
	videos, err := sm.Videos()
	if err != nil || len(videos) != 1 || videos[0] != "traffic" {
		t.Errorf("Videos = %v, %v", videos, err)
	}
	labels, err := sm.Labels("traffic")
	if err != nil || len(labels) != 2 {
		t.Errorf("Labels = %v, %v", labels, err)
	}
	n, err := sm.VideoBytes("traffic")
	if err != nil || n <= 0 {
		t.Errorf("VideoBytes = %d, %v", n, err)
	}
	// Two cars over 30 frames = 60 detections.
	ds, err := sm.LookupDetections("traffic", "car", 0, 30)
	if err != nil || len(ds) != 60 {
		t.Errorf("LookupDetections = %d, %v", len(ds), err)
	}
}

func TestUniformLayoutHelper(t *testing.T) {
	sm, _ := openManager(t)
	l, err := sm.UniformLayout("traffic", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows() != 2 || l.Cols() != 3 {
		t.Errorf("layout = %dx%d", l.Rows(), l.Cols())
	}
}

func TestMarkDetectedRoundTrip(t *testing.T) {
	sm, _ := openManager(t)
	if err := sm.MarkDetected("traffic", "car", 0, 30); err != nil {
		t.Fatal(err)
	}
}

func TestIngestTiledAPI(t *testing.T) {
	sm, err := Open(t.TempDir(), WithGOPLength(10), WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	v := makeVideo(t)
	frames := v.Frames(0, 20)
	layouts := make([]Layout, 2)
	for i := range layouts {
		layouts[i] = Layout{RowHeights: []int{96}, ColWidths: []int{96, 96}}
	}
	if _, err := sm.IngestTiled("cam", frames, 10, layouts); err != nil {
		t.Fatal(err)
	}
	meta, _ := sm.Meta("cam")
	if meta.SOTs[0].L.NumTiles() != 2 {
		t.Errorf("tiles = %d", meta.SOTs[0].L.NumTiles())
	}
}

func TestCacheBudgetAPI(t *testing.T) {
	sm, _ := openManager(t, WithCacheBudget(64<<20), WithParallelism(2))
	const sql = "SELECT car FROM traffic WHERE 0 <= t < 30"
	cold, cs, err := sm.ScanSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CacheMisses == 0 || cs.CacheHits != 0 {
		t.Errorf("cold scan stats = %+v", cs)
	}
	warm, ws, err := sm.ScanSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if ws.CacheHits == 0 || ws.TilesDecoded != 0 {
		t.Errorf("warm scan stats = %+v", ws)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm returned %d regions, cold %d", len(warm), len(cold))
	}
	g := sm.CacheStats()
	if g.Hits == 0 || g.Entries == 0 || g.BytesCached == 0 {
		t.Errorf("global cache stats = %+v", g)
	}
	if err := sm.DeleteVideo("traffic"); err != nil {
		t.Fatal(err)
	}
	if g := sm.CacheStats(); g.Entries != 0 {
		t.Errorf("cache not emptied by DeleteVideo: %+v", g)
	}
	if _, _, err := sm.ScanSQL(sql); err == nil {
		t.Fatal("scan of deleted video succeeded")
	}
}
